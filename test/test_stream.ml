(* Tests for Ftsched_stream: admission control on residual timelines,
   the never-lost oracle over chaos traces, campaign determinism across
   worker counts, and the ?release residual-timeline hook threaded
   through Driver/Ftsa/Event_sim. *)

module Rng = Ftsched_util.Rng
module Platform = Ftsched_platform.Platform
module Instance = Ftsched_model.Instance
module Schedule = Ftsched_schedule.Schedule
module Ftsa = Ftsched_core.Ftsa
module Event_sim = Ftsched_sim.Event_sim
module Admission = Ftsched_stream.Admission
module Stream = Ftsched_stream.Stream
open Helpers

let chaos_config =
  {
    Stream.default_config with
    Stream.duration = 30.;
    rate = 0.8;
    chaos = { Stream.default_chaos with crash_rate = 0.15; loss = 0.05 };
  }

(* ---------------- ?release: residual timelines ---------------- *)

let test_release_delays_schedule () =
  let inst = random_instance ~n_tasks:12 ~m:3 ~seed:42 () in
  let release = [| 5.; 0.; 7. |] in
  let s = Ftsa.schedule ~seed:1 ~release inst ~eps:1 in
  for t = 0 to Instance.n_tasks inst - 1 do
    Array.iter
      (fun (r : Schedule.replica) ->
        check_bool "replica starts after its processor's release" true
          (r.Schedule.start +. 1e-9 >= release.(r.Schedule.proc)))
      (Schedule.replicas s t)
  done;
  (* An all-zero release is the plain schedule, bit for bit. *)
  let s0 = Ftsa.schedule ~seed:1 ~release:[| 0.; 0.; 0. |] inst ~eps:1 in
  let plain = Ftsa.schedule ~seed:1 inst ~eps:1 in
  check_float "zero release = no release"
    (Schedule.latency_upper_bound plain)
    (Schedule.latency_upper_bound s0)

let test_release_validation () =
  let inst = random_instance ~n_tasks:6 ~m:2 ~seed:7 () in
  let expect_invalid label release =
    match Ftsa.schedule ~release inst ~eps:0 with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  expect_invalid "wrong-size release" [| 1. |];
  expect_invalid "negative release" [| -1.; 0. |];
  expect_invalid "NaN release" [| Float.nan; 0. |];
  expect_invalid "infinite release" [| infinity; 0. |]

let test_release_delays_execution () =
  let inst = random_instance ~n_tasks:10 ~m:3 ~seed:9 () in
  let release = [| 4.; 4.; 4. |] in
  let s = Ftsa.schedule ~seed:2 ~release inst ~eps:1 in
  let fail_times = Array.make 3 infinity in
  let r = Event_sim.run ~release s ~fail_times in
  (match r.Event_sim.latency with
  | None -> Alcotest.fail "fault-free run defeated"
  | Some l -> check_bool "execution cannot finish before release" true (l > 4.));
  (* The engine is work-conserving: without the release it would start
     at 0 and finish strictly earlier. *)
  let plain = Ftsa.schedule ~seed:2 inst ~eps:1 in
  let r0 = Event_sim.run plain ~fail_times in
  match (r0.Event_sim.latency, r.Event_sim.latency) with
  | Some l0, Some l -> check_bool "release postpones the finish" true (l >= l0)
  | _ -> Alcotest.fail "unexpected defeat"

(* ---------------- admission controller ---------------- *)

let test_admission_backpressure () =
  let inst = random_instance ~n_tasks:8 ~m:3 ~seed:11 () in
  let ctrl = Admission.create ~m:3 ~capacity:1 in
  (match Admission.try_admit ctrl ~now:0. ~deadline:1e6 ~eps:1 ~seed:3 inst with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "first job rejected: %a" Admission.pp_reject r);
  (match Admission.try_admit ctrl ~now:0. ~deadline:1e6 ~eps:1 ~seed:4 inst with
  | Error (Admission.Backpressure { inflight; capacity }) ->
      check_int "inflight" 1 inflight;
      check_int "capacity" 1 capacity
  | Ok _ -> Alcotest.fail "second job admitted past capacity"
  | Error r -> Alcotest.failf "wrong reject reason: %a" Admission.pp_reject r);
  (* Reservations expire: far in the future the queue has drained. *)
  match
    Admission.try_admit ctrl ~now:1e5 ~deadline:1e6 ~eps:1 ~seed:5 inst
  with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "drained queue rejected: %a" Admission.pp_reject r

let test_admission_infeasible_deadline () =
  let inst = random_instance ~n_tasks:8 ~m:3 ~seed:13 () in
  let ctrl = Admission.create ~m:3 ~capacity:4 in
  match Admission.try_admit ctrl ~now:10. ~deadline:10.1 ~eps:2 ~seed:6 inst with
  | Error (Admission.Deadline_infeasible { needed; deadline }) ->
      check_float "deadline echoed" 10.1 deadline;
      check_bool "needed past deadline" true (needed > deadline)
  | Ok _ -> Alcotest.fail "hopeless deadline admitted"
  | Error r -> Alcotest.failf "wrong reject reason: %a" Admission.pp_reject r

let test_admission_degrades_eps () =
  (* A deadline generous enough for eps = 0 but (on this instance) not
     for the fully replicated plan: the controller lands between. *)
  let inst = random_instance ~n_tasks:10 ~m:3 ~seed:17 () in
  let full = Ftsa.schedule ~seed:8 inst ~eps:2 in
  let bare = Ftsa.schedule ~seed:8 inst ~eps:0 in
  let needed_full = Schedule.latency_upper_bound full in
  let needed_bare = Schedule.latency_upper_bound bare in
  check_bool "fixture: replication costs latency" true
    (needed_bare < needed_full);
  let deadline = (needed_bare +. needed_full) /. 2. in
  let ctrl = Admission.create ~m:3 ~capacity:4 in
  match Admission.try_admit ctrl ~now:0. ~deadline ~eps:2 ~seed:8 inst with
  | Ok plan ->
      check_bool "degraded admission flagged" true
        plan.Admission.degraded_admission;
      check_bool "eps below requested" true (plan.Admission.eps_planned < 2);
      check_bool "still meets deadline" true
        (plan.Admission.rel_finish <= deadline)
  | Error r -> Alcotest.failf "degradable job rejected: %a" Admission.pp_reject r

let test_admission_occupy_shifts_residual () =
  let ctrl = Admission.create ~m:3 ~capacity:4 in
  Admission.occupy ctrl ~proc:1 ~until:12.;
  let res = Admission.residual ctrl ~now:2. in
  check_float "occupied processor" 10. res.(1);
  check_float "idle processor" 0. res.(0);
  let res' = Admission.residual ctrl ~now:20. in
  check_float "occupation expires" 0. res'.(1)

(* ---------------- the never-lost oracle ---------------- *)

let test_never_lost_under_chaos () =
  for seed = 0 to 9 do
    let r = Stream.run_trace ~config:chaos_config ~seed () in
    match Stream.check_report r with
    | [] -> ()
    | errs ->
        Alcotest.failf "seed %d violates never-lost: %s" seed
          (String.concat "; " errs)
  done

let test_chaos_actually_bites () =
  (* The chaos fixture must exercise the interesting paths, otherwise
     the oracle checks nothing. *)
  let reports =
    List.init 10 (fun seed -> Stream.run_trace ~config:chaos_config ~seed ())
  in
  let t = Stream.merge_totals reports in
  check_bool "some jobs submitted" true (t.Stream.submitted > 20);
  check_bool "some crashes drawn" true (t.Stream.crash_events > 0);
  check_bool "some jobs hit by crashes" true
    (List.exists
       (fun (j : Stream.job) -> j.Stream.crashes_seen > 0)
       (List.concat_map (fun r -> r.Stream.jobs) reports))

let prop_accounting =
  QCheck.Test.make ~name:"accepted + rejected + aborted = submitted" ~count:15
    QCheck.(int_bound 9999)
    (fun seed ->
      let config =
        {
          Stream.default_config with
          Stream.duration = 15.;
          rate = 1.0;
          capacity = 3;
          chaos = { Stream.default_chaos with crash_rate = 0.2 };
        }
      in
      let r = Stream.run_trace ~config ~seed () in
      let t = r.Stream.totals in
      Stream.check_report r = []
      && t.Stream.submitted = t.Stream.admitted + t.Stream.rejected
      && t.Stream.admitted
         = t.Stream.completed + t.Stream.degraded + t.Stream.aborted)

let test_backpressure_surfaces_in_stream () =
  let config =
    {
      Stream.default_config with
      Stream.duration = 20.;
      rate = 3.0;
      capacity = 2;
    }
  in
  let some_backpressure =
    List.exists
      (fun seed ->
        let r = Stream.run_trace ~config ~seed () in
        List.exists
          (fun (j : Stream.job) ->
            match j.Stream.fate with
            | Stream.Rejected (Admission.Backpressure _) -> true
            | _ -> false)
          r.Stream.jobs)
      [ 0; 1; 2; 3; 4 ]
  in
  check_bool "overload produces typed backpressure rejections" true
    some_backpressure

(* ---------------- determinism across worker counts ---------------- *)

let test_campaign_jobs_bit_identical () =
  let digests jobs =
    List.map Stream.report_digest
      (Stream.campaign ~config:chaos_config ~jobs ~seeds:6 ())
  in
  let d1 = digests 1 and d4 = digests 4 in
  check_bool "-j 1 = -j 4 (byte-identical reports)" true (d1 = d4)

let prop_trace_deterministic =
  QCheck.Test.make ~name:"run_trace is a pure function of its seed" ~count:10
    QCheck.(int_bound 9999)
    (fun seed ->
      let config = { chaos_config with Stream.duration = 10. } in
      let a = Stream.run_trace ~config ~seed () in
      let b = Stream.run_trace ~config ~seed () in
      Stream.report_digest a = Stream.report_digest b && a = b)

(* ---------------- shadow plans ---------------- *)

let test_shadow_statuses_consistent () =
  let reports =
    List.init 12 (fun seed -> Stream.run_trace ~config:chaos_config ~seed ())
  in
  List.iter
    (fun (r : Stream.report) ->
      List.iter
        (fun (j : Stream.job) ->
          match (j.Stream.fate, j.Stream.shadow) with
          | Stream.Rejected _, s ->
              check_bool "rejected jobs carry no shadow status" true
                (s = Stream.No_shadow)
          | _, Stream.No_shadow ->
              Alcotest.failf "admitted job %d lost its shadow status"
                j.Stream.id
          | _, (Stream.Fault_free | Stream.Shadow_hit | Stream.Shadow_stale) ->
              ())
        r.Stream.jobs)
    reports;
  let t = Stream.merge_totals reports in
  check_bool "chaos fixture produces shadow reactions" true
    (t.Stream.shadow_hits + t.Stream.shadow_stale > 0)

let test_no_shadow_disables_statuses () =
  let config = { chaos_config with Stream.shadow = false } in
  let r = Stream.run_trace ~config ~seed:0 () in
  check_bool "every job is No_shadow" true
    (List.for_all
       (fun (j : Stream.job) -> j.Stream.shadow = Stream.No_shadow)
       r.Stream.jobs);
  match Stream.check_report r with
  | [] -> ()
  | errs -> Alcotest.failf "no-shadow trace: %s" (String.concat "; " errs)

let test_config_validation () =
  let expect label config =
    match Stream.run_trace ~config ~seed:0 () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" label
  in
  expect "negative rate" { Stream.default_config with Stream.rate = -1. };
  expect "NaN rate" { Stream.default_config with Stream.rate = Float.nan };
  expect "zero duration" { Stream.default_config with Stream.duration = 0. };
  expect "negative delta" { Stream.default_config with Stream.delta = -0.5 };
  expect "eps out of range"
    { Stream.default_config with Stream.eps = Stream.default_config.Stream.m };
  expect "loss above one"
    {
      Stream.default_config with
      Stream.chaos = { Stream.no_chaos with Stream.loss = 1.5 };
    }

let () =
  Alcotest.run "stream"
    [
      ( "release",
        [
          Alcotest.test_case "schedule respects release" `Quick
            test_release_delays_schedule;
          Alcotest.test_case "release validation" `Quick
            test_release_validation;
          Alcotest.test_case "execution respects release" `Quick
            test_release_delays_execution;
        ] );
      ( "admission",
        [
          Alcotest.test_case "backpressure" `Quick test_admission_backpressure;
          Alcotest.test_case "infeasible deadline" `Quick
            test_admission_infeasible_deadline;
          Alcotest.test_case "graceful eps degradation" `Quick
            test_admission_degrades_eps;
          Alcotest.test_case "occupy shifts residual" `Quick
            test_admission_occupy_shifts_residual;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "never lost under chaos" `Quick
            test_never_lost_under_chaos;
          Alcotest.test_case "chaos actually bites" `Quick
            test_chaos_actually_bites;
          quick prop_accounting;
          Alcotest.test_case "backpressure surfaces" `Quick
            test_backpressure_surfaces_in_stream;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "campaign -j digests" `Quick
            test_campaign_jobs_bit_identical;
          quick prop_trace_deterministic;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "status consistency" `Quick
            test_shadow_statuses_consistent;
          Alcotest.test_case "shadow off" `Quick test_no_shadow_disables_statuses;
        ] );
    ]
