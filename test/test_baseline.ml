(* Tests for Ftsched_baseline: FTBAR and HEFT. *)

module Ftbar = Ftsched_baseline.Ftbar
module Heft = Ftsched_baseline.Heft
module Ftsa = Ftsched_core.Ftsa
module Schedule = Ftsched_schedule.Schedule
module Validate = Ftsched_schedule.Validate
open Helpers

let prop_ftbar_valid =
  QCheck.Test.make ~name:"FTBAR schedules are always valid" ~count:40
    QCheck.(pair (int_range 0 3) (int_range 0 5000))
    (fun (npf, seed) ->
      let inst = random_instance ~seed ~m:6 () in
      let s = Ftbar.schedule ~seed inst ~npf in
      Validate.check s = Ok ())

let prop_ftbar_survives =
  QCheck.Test.make ~name:"FTBAR survives every npf-subset" ~count:20
    QCheck.(pair (int_range 1 2) (int_range 0 5000))
    (fun (npf, seed) ->
      let inst = random_instance ~seed ~n_tasks:25 ~m:5 () in
      let s = Ftbar.schedule ~seed inst ~npf in
      Validate.survives_all_subsets s)

let test_ftbar_npf0 () =
  let inst = random_instance ~seed:1 () in
  let s = Ftbar.schedule inst ~npf:0 in
  check_int "single replica" 1 (Schedule.n_replicas s);
  assert_valid "fault-free ftbar" s

let test_ftbar_invalid_npf () =
  let inst = random_instance ~seed:2 ~m:4 () in
  Alcotest.check_raises "npf too large"
    (Invalid_argument "Ftbar.schedule: need 0 <= npf < number of processors")
    (fun () -> ignore (Ftbar.schedule inst ~npf:4))

let test_ftbar_deterministic () =
  let inst = random_instance ~seed:3 () in
  let a = Ftbar.schedule ~seed:5 inst ~npf:2 in
  let b = Ftbar.schedule ~seed:5 inst ~npf:2 in
  check_float "same latency"
    (Schedule.latency_lower_bound a)
    (Schedule.latency_lower_bound b)

let test_ftbar_replicates_everywhere () =
  let inst = random_instance ~seed:4 ~m:3 () in
  let s = Ftbar.schedule inst ~npf:2 in
  for t = 0 to Instance.n_tasks inst - 1 do
    Alcotest.(check (list int)) "all procs" [ 0; 1; 2 ]
      (List.sort compare (Array.to_list (Schedule.assigned_procs s t)))
  done

(* Aggregate quality: FTSA should beat FTBAR on average (the paper's
   headline result).  Checked over a small batch to keep CI fast. *)
let test_ftsa_beats_ftbar_on_average () =
  let total_ftsa = ref 0. and total_ftbar = ref 0. in
  for seed = 0 to 9 do
    let inst = random_instance ~seed ~n_tasks:60 ~m:10 () in
    let s = Ftsa.schedule ~seed inst ~eps:2 in
    let f = Ftbar.schedule ~seed inst ~npf:2 in
    total_ftsa := !total_ftsa +. Schedule.latency_lower_bound s;
    total_ftbar := !total_ftbar +. Schedule.latency_lower_bound f
  done;
  check_bool "mean FTSA M* < mean FTBAR M*" true (!total_ftsa < !total_ftbar)

(* ------------------------------------------------------------------ *)
(* HEFT                                                                *)

let prop_heft_valid =
  QCheck.Test.make ~name:"HEFT schedules are always valid" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      let inst = random_instance ~seed ~m:6 () in
      let s = Heft.schedule inst in
      Validate.check s = Ok ())

let test_heft_single_replica () =
  let inst = random_instance ~seed:6 () in
  let s = Heft.schedule inst in
  check_int "eps 0" 0 (Schedule.eps s)

let test_heft_close_to_fault_free_ftsa () =
  (* both are upward-rank earliest-finish heuristics; on average they
     should land in the same ballpark (within 2x of each other). *)
  let total_heft = ref 0. and total_ftsa = ref 0. in
  for seed = 0 to 9 do
    let inst = random_instance ~seed ~n_tasks:60 ~m:10 () in
    total_heft :=
      !total_heft +. Schedule.latency_lower_bound (Heft.schedule inst);
    total_ftsa :=
      !total_ftsa +. Schedule.latency_lower_bound (Ftsa.fault_free inst)
  done;
  let ratio = !total_heft /. !total_ftsa in
  check_bool "ratio in [0.5, 2]" true (ratio > 0.5 && ratio < 2.)

let test_heft_insertion_gap () =
  (* A graph where insertion matters: two chains A->B and a short task C
     that fits in the idle gap on the same processor.  HEFT must not
     push C after B. *)
  let b = Dag.Builder.create () in
  let a = Dag.Builder.add_task b in
  let bb = Dag.Builder.add_task b in
  let _c = Dag.Builder.add_task b in
  Dag.Builder.add_edge b ~src:a ~dst:bb ~volume:100.;
  let dag = Dag.Builder.build b in
  let platform = Platform.homogeneous ~m:1 ~unit_delay:1. in
  (* one processor: a [0,10]; b waits for nothing but order; c dur 2 *)
  let exec = [| [| 10. |]; [| 10. |]; [| 2. |] |] in
  let inst = Instance.create ~dag ~platform ~exec in
  let s = Heft.schedule inst in
  assert_valid "heft single proc" s;
  check_bool "c fits" true (Schedule.latency_lower_bound s <= 22.)

(* ------------------------------------------------------------------ *)
(* CPOP                                                                *)

module Cpop = Ftsched_baseline.Cpop

let prop_cpop_valid =
  QCheck.Test.make ~name:"CPOP schedules are always valid" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      let inst = random_instance ~seed ~m:6 () in
      Validate.check (Cpop.schedule inst) = Ok ())

let test_cpop_single_replica () =
  let inst = random_instance ~seed:8 () in
  check_int "eps 0" 0 (Schedule.eps (Cpop.schedule inst))

let test_cpop_chain_on_one_proc () =
  (* a pure chain IS the critical path; CPOP must put it all on the
     processor minimizing total execution *)
  let inst = tiny_instance () in
  let s = Cpop.schedule inst in
  (* totals: P0 = 2+3+5 = 10, P1 = 4+3+1 = 8 -> all on P1, back to back *)
  for t = 0 to 2 do
    check_int "on P1" 1 (Schedule.proc_of s t 0)
  done;
  check_float "chain latency 4+3+1" 8. (Schedule.latency_lower_bound s)

let test_cpop_competitive () =
  let total_cpop = ref 0. and total_heft = ref 0. in
  for seed = 0 to 9 do
    let inst = random_instance ~seed ~n_tasks:60 ~m:10 () in
    total_cpop :=
      !total_cpop +. Schedule.latency_lower_bound (Cpop.schedule inst);
    total_heft :=
      !total_heft +. Schedule.latency_lower_bound (Heft.schedule inst)
  done;
  let ratio = !total_cpop /. !total_heft in
  check_bool "within 2x of HEFT on average" true (ratio > 0.5 && ratio < 2.)

(* ------------------------------------------------------------------ *)
(* PEFT                                                                *)

module Peft = Ftsched_baseline.Peft

let prop_peft_valid =
  QCheck.Test.make ~name:"PEFT schedules are always valid" ~count:40
    QCheck.(int_range 0 5000)
    (fun seed ->
      let inst = random_instance ~seed ~m:6 () in
      Validate.check (Peft.schedule inst) = Ok ())

let test_peft_oct_exits_zero () =
  let inst = random_instance ~seed:9 ~m:5 () in
  let table = Peft.oct inst in
  let g = Instance.dag inst in
  List.iter
    (fun e ->
      Array.iter (fun v -> check_float "exit OCT" 0. v) table.(e))
    (Ftsched_dag.Dag.exits g)

let test_peft_oct_chain_values () =
  (* tiny chain: OCT(t2, all procs) = 0; OCT(t1,p) = min_q (E(t2,q) + comm);
     OCT(t0,p) = min_q (OCT(t1,q) + E(t1,q) + comm).
     exec = [[2;4],[3;3],[5;1]], vols 10/20, d̄ = 0.5. *)
  let inst = tiny_instance () in
  let table = Peft.oct inst in
  (* from p=0: staying (q=0): 5+0 = 5; moving (q=1): 1 + 20*0.5 = 11 *)
  check_float "OCT(t1,P0)" 5. table.(1).(0);
  (* from p=1: staying: 1; moving: 5 + 10 = 15 *)
  check_float "OCT(t1,P1)" 1. table.(1).(1);
  (* OCT(t0,P0): q=0 -> 5+3+0 = 8; q=1 -> 1+3+5 = 9 -> 8 *)
  check_float "OCT(t0,P0)" 8. table.(0).(0);
  (* OCT(t0,P1): q=0 -> 5+3+5 = 13; q=1 -> 1+3+0 = 4 -> 4 *)
  check_float "OCT(t0,P1)" 4. table.(0).(1)

let test_peft_competitive () =
  let total_peft = ref 0. and total_heft = ref 0. in
  for seed = 0 to 9 do
    let inst = random_instance ~seed ~n_tasks:60 ~m:10 () in
    total_peft :=
      !total_peft +. Schedule.latency_lower_bound (Peft.schedule inst);
    total_heft :=
      !total_heft +. Schedule.latency_lower_bound (Heft.schedule inst)
  done;
  let ratio = !total_peft /. !total_heft in
  check_bool "within 2x of HEFT on average" true (ratio > 0.5 && ratio < 2.)

let () =
  Alcotest.run "baseline"
    [
      ( "ftbar",
        [
          quick prop_ftbar_valid;
          quick prop_ftbar_survives;
          Alcotest.test_case "npf=0" `Quick test_ftbar_npf0;
          Alcotest.test_case "invalid npf" `Quick test_ftbar_invalid_npf;
          Alcotest.test_case "deterministic" `Quick test_ftbar_deterministic;
          Alcotest.test_case "replicates everywhere" `Quick
            test_ftbar_replicates_everywhere;
          Alcotest.test_case "FTSA beats FTBAR on average" `Quick
            test_ftsa_beats_ftbar_on_average;
        ] );
      ( "heft",
        [
          quick prop_heft_valid;
          Alcotest.test_case "single replica" `Quick test_heft_single_replica;
          Alcotest.test_case "tracks fault-free FTSA" `Quick
            test_heft_close_to_fault_free_ftsa;
          Alcotest.test_case "insertion" `Quick test_heft_insertion_gap;
        ] );
      ( "cpop",
        [
          quick prop_cpop_valid;
          Alcotest.test_case "single replica" `Quick test_cpop_single_replica;
          Alcotest.test_case "chain pinned" `Quick test_cpop_chain_on_one_proc;
          Alcotest.test_case "competitive with HEFT" `Quick test_cpop_competitive;
        ] );
      ( "peft",
        [
          quick prop_peft_valid;
          Alcotest.test_case "OCT exits zero" `Quick test_peft_oct_exits_zero;
          Alcotest.test_case "OCT chain values" `Quick test_peft_oct_chain_values;
          Alcotest.test_case "competitive with HEFT" `Quick test_peft_competitive;
        ] );
    ]
