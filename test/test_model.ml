(* Tests for Ftsched_model: Instance, Granularity, Levels, Deadline.

   Most numeric expectations are hand-computed on the [tiny_instance]
   fixture: 3-task chain, volumes 10 and 20, two processors with mutual
   unit delay 0.5, exec matrix [[2;4],[3;3],[5;1]]. *)

module Instance = Ftsched_model.Instance
module Granularity = Ftsched_model.Granularity
module Levels = Ftsched_model.Levels
module Deadline = Ftsched_model.Deadline
module Dag = Ftsched_dag.Dag
module Generators = Ftsched_dag.Generators
module Platform = Ftsched_platform.Platform
module Rng = Ftsched_util.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)

let test_instance_accessors () =
  let inst = tiny_instance () in
  check_int "tasks" 3 (Instance.n_tasks inst);
  check_int "procs" 2 (Instance.n_procs inst);
  check_float "exec" 4. (Instance.exec inst 0 1);
  check_float "avg exec t0" 3. (Instance.avg_exec inst 0);
  check_float "min exec t2" 1. (Instance.min_exec inst 2);
  check_float "max exec t2" 5. (Instance.max_exec inst 2);
  check_float "mean task exec" 3. (Instance.mean_task_exec inst)

let test_instance_comm () =
  let inst = tiny_instance () in
  check_float "inter-proc" 5. (Instance.comm_time inst ~volume:10. ~src:0 ~dst:1);
  check_float "intra free" 0. (Instance.comm_time inst ~volume:10. ~src:1 ~dst:1);
  check_float "avg comm" 5. (Instance.avg_comm_time inst ~volume:10.);
  check_float "edge avg comm" 10. (Instance.edge_avg_comm inst 1)

let test_instance_validation () =
  let b = Dag.Builder.create () in
  let _ = Dag.Builder.add_task b in
  let dag = Dag.Builder.build b in
  let platform = Platform.homogeneous ~m:2 ~unit_delay:1. in
  Alcotest.check_raises "wrong rows" (Invalid_argument "Instance.create: exec rows")
    (fun () -> ignore (Instance.create ~dag ~platform ~exec:[||]));
  Alcotest.check_raises "wrong cols" (Invalid_argument "Instance.create: exec cols")
    (fun () -> ignore (Instance.create ~dag ~platform ~exec:[| [| 1. |] |]));
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Instance.create: exec cost must be positive") (fun () ->
      ignore (Instance.create ~dag ~platform ~exec:[| [| 1.; 0. |] |]))

let test_scale_exec () =
  let inst = tiny_instance () in
  let doubled = Instance.scale_exec inst ~factor:2. in
  check_float "scaled" 8. (Instance.exec doubled 0 1);
  check_float "avg follows" 6. (Instance.avg_exec doubled 0);
  check_float "original untouched" 4. (Instance.exec inst 0 1)

let prop_random_exec_bounds =
  QCheck.Test.make ~name:"random_exec costs within model bounds" ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let dag = Generators.layered rng ~n_tasks:20 () in
      let platform = Platform.homogeneous ~m:4 ~unit_delay:1. in
      let inst =
        Instance.random_exec rng ~dag ~platform ~task_weight:(50., 150.)
          ~proc_speed:(0.5, 2.) ~inconsistency:0.5 ()
      in
      let ok = ref true in
      for t = 0 to 19 do
        for p = 0 to 3 do
          let c = Instance.exec inst t p in
          (* w in [50,150), s in [0.5,2), u in [0.5,1.5) *)
          if c < 50. *. 0.5 *. 0.5 || c > 150. *. 2. *. 1.5 then ok := false
        done
      done;
      !ok)

let test_random_exec_rejects_bad_inconsistency () =
  let rng = Rng.create ~seed:0 in
  let dag = Generators.chain rng ~n_tasks:3 () in
  let platform = Platform.homogeneous ~m:2 ~unit_delay:1. in
  Alcotest.check_raises "inconsistency out of range"
    (Invalid_argument "Instance.random_exec: inconsistency must be in [0,1)")
    (fun () ->
      ignore (Instance.random_exec rng ~dag ~platform ~inconsistency:1.5 ()))

let test_of_task_costs () =
  let rng = Rng.create ~seed:1 in
  let dag = Generators.chain rng ~n_tasks:3 () in
  let platform = Platform.homogeneous ~m:4 ~unit_delay:1. in
  let costs = [| 10.; 0.; 20. |] in
  let inst =
    Instance.of_task_costs rng ~dag ~costs ~platform ~inconsistency:0.25 ()
  in
  for p = 0 to 3 do
    let c = Instance.exec inst 0 p in
    check_bool "within noise band" true (c >= 7.5 && c < 12.5);
    check_bool "zero cost clamped positive" true (Instance.exec inst 1 p > 0.)
  done;
  (* inconsistency 0 reproduces costs exactly *)
  let exact = Instance.of_task_costs rng ~dag ~costs ~platform ~inconsistency:0. () in
  check_float "exact" 20. (Instance.exec exact 2 1)

(* ------------------------------------------------------------------ *)
(* Granularity                                                         *)

let test_granularity_known () =
  let inst = tiny_instance () in
  (* sum slowest comp = 4+3+5 = 12; slowest comm = (10+20)*0.5 = 15 *)
  check_float "g = 12/15" 0.8 (Granularity.granularity inst)

let test_scale_to_target () =
  let inst = tiny_instance () in
  let scaled = Granularity.scale_to inst ~target:2.0 in
  check_float "hits target" 2.0 (Granularity.granularity scaled);
  (* communication volumes untouched, only exec costs move *)
  check_float "exec rescaled" (4. *. (2.0 /. 0.8)) (Instance.exec scaled 0 1)

let test_granularity_no_edges () =
  let b = Dag.Builder.create () in
  let _ = Dag.Builder.add_task b in
  let dag = Dag.Builder.build b in
  let platform = Platform.homogeneous ~m:2 ~unit_delay:1. in
  let inst = Instance.create ~dag ~platform ~exec:[| [| 1.; 2. |] |] in
  check_bool "infinite granularity" true
    (Granularity.granularity inst = infinity);
  Alcotest.check_raises "cannot scale"
    (Invalid_argument "Granularity.scale_to: no communication in instance")
    (fun () -> ignore (Granularity.scale_to inst ~target:1.))

let prop_scale_to_any_target =
  QCheck.Test.make ~name:"scale_to reaches arbitrary targets" ~count:100
    QCheck.(pair (int_range 0 500) (float_range 0.1 5.0))
    (fun (seed, target) ->
      let inst = random_instance ~seed () in
      let scaled = Granularity.scale_to inst ~target in
      Float.abs (Granularity.granularity scaled -. target) < 1e-6 *. target)

(* ------------------------------------------------------------------ *)
(* Levels                                                              *)

let test_bottom_levels_chain () =
  let inst = tiny_instance () in
  let bl = Levels.bottom_levels inst in
  check_float "exit" 3. bl.(2);
  check_float "middle 3+10+3" 16. bl.(1);
  check_float "entry 3+5+16" 24. bl.(0)

let test_downward_ranks_chain () =
  let inst = tiny_instance () in
  let rd = Levels.downward_ranks inst in
  check_float "entry" 0. rd.(0);
  check_float "middle 0+3+5" 8. rd.(1);
  check_float "exit 8+3+10" 21. rd.(2)

let test_static_critical_path () =
  let inst = tiny_instance () in
  check_float "cp" 24. (Levels.static_critical_path inst)

let prop_bottom_level_at_least_avg_exec =
  QCheck.Test.make ~name:"bl(t) >= avg exec" ~count:100
    QCheck.(int_range 0 500)
    (fun seed ->
      let inst = random_instance ~seed () in
      let bl = Levels.bottom_levels inst in
      let ok = ref true in
      Array.iteri
        (fun t b -> if b < Instance.avg_exec inst t -. 1e-9 then ok := false)
        bl;
      !ok)

let prop_sorted_by_bl_topological =
  QCheck.Test.make ~name:"decreasing bl order is topological" ~count:100
    QCheck.(int_range 0 500)
    (fun seed ->
      let inst = random_instance ~seed () in
      let g = Instance.dag inst in
      let order = Levels.sorted_by_bottom_level inst in
      let pos = Array.make (Dag.n_tasks g) 0 in
      Array.iteri (fun i t -> pos.(t) <- i) order;
      Dag.fold_edges g ~init:true ~f:(fun acc _ ~src ~dst ~volume:_ ->
          acc && pos.(src) < pos.(dst)))

(* ------------------------------------------------------------------ *)
(* Deadline                                                            *)

let test_fastest_avg_exec () =
  let inst = tiny_instance () in
  check_float "eps=0 takes the fastest" 1. (Deadline.fastest_avg_exec inst ~eps:0 2);
  check_float "eps=1 averages both" 3. (Deadline.fastest_avg_exec inst ~eps:1 2);
  (* eps larger than m-1 clamps to m *)
  check_float "clamped" 3. (Deadline.fastest_avg_exec inst ~eps:7 2)

let test_fastest_avg_delay () =
  let inst = tiny_instance () in
  check_float "homogeneous" 0.5 (Deadline.fastest_avg_delay inst ~eps:0);
  check_float "still 0.5" 0.5 (Deadline.fastest_avg_delay inst ~eps:1)

let test_deadlines_chain () =
  let inst = tiny_instance () in
  let dl = Deadline.compute inst ~eps:0 ~latency:100. in
  check_float "exit" 100. dl.(2);
  check_float "middle 100-1-10" 89. dl.(1);
  check_float "entry 89-3-5" 81. dl.(0);
  check_bool "feasible" true (Deadline.feasible dl)

let test_deadlines_infeasible () =
  let inst = tiny_instance () in
  let dl = Deadline.compute inst ~eps:1 ~latency:1. in
  check_bool "negative deadlines" false (Deadline.feasible dl)

let prop_deadlines_monotone =
  QCheck.Test.make ~name:"deadline(t) <= deadline(succ t)" ~count:100
    QCheck.(int_range 0 500)
    (fun seed ->
      let inst = random_instance ~seed () in
      let g = Instance.dag inst in
      let dl = Deadline.compute inst ~eps:1 ~latency:1e6 in
      Dag.fold_edges g ~init:true ~f:(fun acc _ ~src ~dst ~volume:_ ->
          acc && dl.(src) <= dl.(dst) +. 1e-9))

let () =
  Alcotest.run "model"
    [
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "comm" `Quick test_instance_comm;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "scale_exec" `Quick test_scale_exec;
          Alcotest.test_case "inconsistency bound" `Quick
            test_random_exec_rejects_bad_inconsistency;
          quick prop_random_exec_bounds;
          Alcotest.test_case "of_task_costs" `Quick test_of_task_costs;
        ] );
      ( "granularity",
        [
          Alcotest.test_case "known value" `Quick test_granularity_known;
          Alcotest.test_case "scale to target" `Quick test_scale_to_target;
          Alcotest.test_case "edgeless" `Quick test_granularity_no_edges;
          quick prop_scale_to_any_target;
        ] );
      ( "levels",
        [
          Alcotest.test_case "bottom levels" `Quick test_bottom_levels_chain;
          Alcotest.test_case "downward ranks" `Quick test_downward_ranks_chain;
          Alcotest.test_case "critical path" `Quick test_static_critical_path;
          quick prop_bottom_level_at_least_avg_exec;
          quick prop_sorted_by_bl_topological;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "fastest exec" `Quick test_fastest_avg_exec;
          Alcotest.test_case "fastest delay" `Quick test_fastest_avg_delay;
          Alcotest.test_case "chain deadlines" `Quick test_deadlines_chain;
          Alcotest.test_case "infeasible" `Quick test_deadlines_infeasible;
          quick prop_deadlines_monotone;
        ] );
    ]
