(* End-to-end integration tests: every scheduler on every classic graph
   family across a grid of replication levels, fully validated and
   crash-simulated — the whole pipeline in one sweep. *)

module Classic = Ftsched_dag.Classic
module Generators = Ftsched_dag.Generators
module Dot = Ftsched_dag.Dot
module Ftsa = Ftsched_core.Ftsa
module Mc_ftsa = Ftsched_core.Mc_ftsa
module Bicriteria = Ftsched_core.Bicriteria
module Ftbar = Ftsched_baseline.Ftbar
module Heft = Ftsched_baseline.Heft
module Scenario = Ftsched_sim.Scenario
module Crash_exec = Ftsched_sim.Crash_exec
module Event_sim = Ftsched_sim.Event_sim
open Helpers

let m = 6

let classic_instances () =
  let rng = Rng.create ~seed:77 in
  List.map
    (fun (name, dag) ->
      let platform = Platform.random rng ~m ~delay_lo:0.5 ~delay_hi:1.0 () in
      (name, Instance.random_exec rng ~dag ~platform ()))
    [
      ("gauss", Classic.gaussian_elimination ~size:6 ());
      ("fft", Classic.fft ~points:8 ());
      ("wavefront", Classic.wavefront ~rows:4 ~cols:4 ());
      ("diamond", Classic.diamond ~layers:4 ());
      ("forkjoin", Generators.fork_join rng ~stages:2 ~width:4 ());
      ("layered", Generators.layered rng ~n_tasks:35 ());
    ]

(* Grid sweep: every algorithm at eps in {0,1,2} on every family must
   produce a valid schedule whose crash replay under no failures equals
   the lower bound. *)
let test_grid_validity () =
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun eps ->
          let schedules =
            [
              (Printf.sprintf "%s/ftsa/%d" name eps, Ftsa.schedule inst ~eps);
              (Printf.sprintf "%s/mc/%d" name eps, Mc_ftsa.schedule inst ~eps);
              ( Printf.sprintf "%s/mcb/%d" name eps,
                Mc_ftsa.schedule ~strategy:Mc_ftsa.Bottleneck inst ~eps );
              (Printf.sprintf "%s/ftbar/%d" name eps, Ftbar.schedule inst ~npf:eps);
            ]
          in
          List.iter
            (fun (label, s) ->
              assert_valid label s;
              let l = Crash_exec.latency_exn s Scenario.none in
              if
                Float.abs
                  (l -. Ftsched_schedule.Schedule.latency_lower_bound s)
                > 1e-6
              then Alcotest.failf "%s: crash(none) <> M*" label)
            schedules)
        [ 0; 1; 2 ])
    (classic_instances ())

(* FTSA end-to-end fault tolerance holds on every family, exhaustively. *)
let test_grid_survivability () =
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun eps ->
          let s = Ftsa.schedule inst ~eps in
          if not (Ftsched_schedule.Validate.survives_all_subsets s) then
            Alcotest.failf "%s eps=%d: FTSA defeated" name eps;
          let f = Ftbar.schedule inst ~npf:eps in
          if not (Ftsched_schedule.Validate.survives_all_subsets f) then
            Alcotest.failf "%s eps=%d: FTBAR defeated" name eps)
        [ 1; 2 ])
    (classic_instances ())

(* Crash replay at exactly eps failures stays within the guaranteed
   bound on every family, for both executors. *)
let test_grid_crash_bounds () =
  List.iter
    (fun (name, inst) ->
      let eps = 2 in
      let s = Ftsa.schedule inst ~eps in
      let ub = Ftsched_schedule.Schedule.latency_upper_bound s in
      List.iter
        (fun sc ->
          let a = Crash_exec.latency_exn s sc in
          if a > ub +. 1e-6 then
            Alcotest.failf "%s: crash latency %g above bound %g" name a ub;
          match (Event_sim.run_crash s sc).Event_sim.latency with
          | Some b ->
              if Float.abs (a -. b) > 1e-6 then
                Alcotest.failf "%s: executors disagree (%g vs %g)" name a b
          | None -> Alcotest.failf "%s: event sim defeated" name)
        (Scenario.all_of_size ~m ~count:eps))
    (classic_instances ())

(* Replication economics across the grid: message counts obey the
   e(eps+1)^2 vs e(eps+1) story of §4.2. *)
let test_grid_message_counts () =
  List.iter
    (fun (_name, inst) ->
      let g = Instance.dag inst in
      let e = Ftsched_dag.Dag.n_edges g in
      List.iter
        (fun eps ->
          let ftsa = Ftsa.schedule inst ~eps in
          let mc = Mc_ftsa.schedule inst ~eps in
          let mf = Ftsched_schedule.Schedule.inter_processor_messages ftsa in
          let mm = Ftsched_schedule.Schedule.inter_processor_messages mc in
          check_bool "ftsa quadratic cap" true (mf <= e * (eps + 1) * (eps + 1));
          check_bool "mc linear cap" true (mm <= e * (eps + 1)))
        [ 1; 2; 3 ])
    (classic_instances ())

(* Bicriteria pipeline: the eps found for a budget indeed fits it, and
   asking for that latency with eps+1 deadlines usually fails. *)
let test_bicriteria_roundtrip () =
  List.iter
    (fun (_name, inst) ->
      let base = Ftsa.fault_free inst in
      let budget =
        2. *. Ftsched_schedule.Schedule.latency_lower_bound base
      in
      match Bicriteria.max_supported_failures inst ~latency:budget with
      | None -> () (* possible: even eps=0 upper bound may exceed budget *)
      | Some (eps, s) ->
          check_bool "fits budget" true
            (Ftsched_schedule.Schedule.latency_upper_bound s <= budget);
          check_int "eps matches" eps (Ftsched_schedule.Schedule.eps s))
    (classic_instances ())

(* The full toolchain on one realistic pipeline: generate, export DOT,
   schedule, validate, replay timed failures. *)
let test_full_pipeline () =
  let rng = Rng.create ~seed:123 in
  let dag = Generators.layered rng ~n_tasks:50 () in
  let dot = Dot.to_dot dag in
  check_bool "dot nonempty" true (String.length dot > 100);
  let platform = Platform.random rng ~m:8 ~delay_lo:0.5 ~delay_hi:1.0 () in
  let inst = Instance.random_exec rng ~dag ~platform () in
  let s = Ftsa.schedule inst ~eps:2 in
  assert_valid "pipeline" s;
  let horizon = Ftsched_schedule.Schedule.latency_upper_bound s in
  for trial = 0 to 9 do
    let timed =
      Scenario.random_timed rng ~m:8 ~count:2 ~horizon
    in
    match (Event_sim.run_timed s timed).Event_sim.latency with
    | Some l ->
        if l > horizon +. 1e-6 then
          Alcotest.failf "trial %d: latency %g above guarantee %g" trial l
            horizon
    | None -> Alcotest.failf "trial %d: defeated by 2 timed failures" trial
  done

(* Mutation fuzzing of the validators: random corruptions of valid
   schedules must be detected. *)
let prop_validators_catch_mutations =
  QCheck.Test.make ~name:"validators catch random schedule corruption"
    ~count:120
    QCheck.(pair (int_range 0 10_000) (int_range 0 3))
    (fun (seed, kind) ->
      let rng = Rng.create ~seed in
      let inst = random_instance ~seed ~n_tasks:20 ~m:5 () in
      let eps = 1 + Rng.int rng 2 in
      let s = Ftsa.schedule ~seed inst ~eps in
      let module S = Ftsched_schedule.Schedule in
      let v = Instance.n_tasks inst in
      let reps = Array.init v (fun t -> Array.copy (S.replicas s t)) in
      let task = Rng.int rng v in
      let k = Rng.int rng (eps + 1) in
      let r = reps.(task).(k) in
      let mutated =
        match kind with
        | 0 ->
            (* move a replica onto a sibling's processor *)
            let other = reps.(task).((k + 1) mod (eps + 1)) in
            { r with S.proc = other.S.proc }
        | 1 ->
            (* run before time zero *)
            let d = r.S.finish -. r.S.start in
            { r with S.start = -10_000.; finish = -10_000. +. d }
        | 2 ->
            (* stretch the execution *)
            { r with S.finish = r.S.finish +. 1. }
        | _ ->
            (* break the pessimistic ordering *)
            { r with S.pess_start = -1.; pess_finish = r.S.pess_finish }
      in
      QCheck.assume (mutated <> r);
      reps.(task).(k) <- mutated;
      match
        S.create ~instance:inst ~eps ~replicas:reps ~comm:(S.comm s)
      with
      | exception Invalid_argument _ -> true (* caught at construction *)
      | s' -> Ftsched_schedule.Validate.check s' <> Ok ())

(* The CLI binary end-to-end (skipped when the binary is not built). *)
let cli_path =
  List.find_opt Sys.file_exists
    [
      "../bin/ftsched.exe" (* cwd = _build/default/test under dune runtest *);
      "_build/default/bin/ftsched.exe" (* cwd = repo root *);
    ]

let run_cli args =
  match cli_path with
  | None -> 0
  | Some path ->
      Sys.command (Filename.quote path ^ " " ^ args ^ " >/dev/null 2>/dev/null")

let test_cli_binary () =
  match cli_path with
  | None -> () (* binary not built in this configuration *)
  | Some _ ->
      check_int "schedule" 0
        (run_cli "schedule --algo mc-ftsa --eps 1 --tasks 25 -m 5 --seed 3");
      check_int "simulate" 0
        (run_cli "simulate --eps 1 --crashes 1 --tasks 25 -m 5 --seed 3");
      check_int "bicriteria" 0
        (run_cli "bicriteria --latency 1e9 --tasks 25 -m 5 --seed 3");
      check_int "reliability" 0
        (run_cli "reliability --eps 1 --tasks 25 -m 5 --p-fail 0.1 --seed 3");
      check_bool "rejects bad kind" true (run_cli "gen --kind nonsense" <> 0);
      let tmp = Filename.temp_file "ftsched" ".sched" in
      check_int "save" 0
        (run_cli
           (Printf.sprintf "schedule --eps 1 --tasks 20 -m 4 --seed 5 --save %s"
              (Filename.quote tmp)));
      check_int "inspect" 0 (run_cli ("inspect " ^ Filename.quote tmp));
      Sys.remove tmp

let () =
  Alcotest.run "integration"
    [
      ( "grid",
        [
          Alcotest.test_case "validity x families x eps" `Slow test_grid_validity;
          Alcotest.test_case "survivability" `Slow test_grid_survivability;
          Alcotest.test_case "crash bounds + executor agreement" `Slow
            test_grid_crash_bounds;
          Alcotest.test_case "message counts" `Slow test_grid_message_counts;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "bicriteria roundtrip" `Slow test_bicriteria_roundtrip;
          Alcotest.test_case "full pipeline with timed failures" `Slow
            test_full_pipeline;
        ] );
      ( "fuzz",
        [ quick prop_validators_catch_mutations ] );
      ( "cli",
        [ Alcotest.test_case "binary end-to-end" `Slow test_cli_binary ] );
    ]
