(* Tests for Ftsched_schedule: comm plans, schedule accessors/bounds,
   validators, Gantt rendering.

   The hand-built schedule used below maps the tiny 3-task chain
   (volumes 10, 20; mutual delay 0.5; exec [[2;4],[3;3],[5;1]]) with
   eps = 1 exactly as FTSA would:

     t0: P0 [0,2]               P1 [0,4]
     t1: P0 [2,5]  (pess [9,12])  P1 [4,7]  (pess [7,10])
     t2: P1 [7,8]  (pess [22,23]) P0 [5,10] (pess [20,25])

   giving M* = 8 and M = 25. *)

module Schedule = Ftsched_schedule.Schedule
module Comm_plan = Ftsched_schedule.Comm_plan
module Validate = Ftsched_schedule.Validate
module Gantt = Ftsched_schedule.Gantt
open Helpers

let r ~task ~index ~proc ~s ~f ~ps ~pf =
  {
    Schedule.task;
    index;
    proc;
    start = s;
    finish = f;
    pess_start = ps;
    pess_finish = pf;
  }

let hand_replicas () =
  [|
    [| r ~task:0 ~index:0 ~proc:0 ~s:0. ~f:2. ~ps:0. ~pf:2.;
       r ~task:0 ~index:1 ~proc:1 ~s:0. ~f:4. ~ps:0. ~pf:4. |];
    [| r ~task:1 ~index:0 ~proc:0 ~s:2. ~f:5. ~ps:9. ~pf:12.;
       r ~task:1 ~index:1 ~proc:1 ~s:4. ~f:7. ~ps:7. ~pf:10. |];
    [| r ~task:2 ~index:0 ~proc:1 ~s:7. ~f:8. ~ps:22. ~pf:23.;
       r ~task:2 ~index:1 ~proc:0 ~s:5. ~f:10. ~ps:20. ~pf:25. |];
  |]

let hand_schedule () =
  Schedule.create ~instance:(tiny_instance ()) ~eps:1
    ~replicas:(hand_replicas ()) ~comm:Comm_plan.All_to_all

(* ------------------------------------------------------------------ *)
(* Comm_plan                                                           *)

let test_all_to_all_pairs () =
  let pairs = Comm_plan.pairs_for Comm_plan.All_to_all ~eps:2 0 in
  check_int "9 pairs" 9 (List.length pairs);
  check_bool "contains 1->2" true
    (List.exists
       (fun p -> p.Comm_plan.src_replica = 1 && p.Comm_plan.dst_replica = 2)
       pairs)

let test_senders_to () =
  let sel =
    Comm_plan.Selected
      [| [ { Comm_plan.src_replica = 0; dst_replica = 1 };
           { Comm_plan.src_replica = 1; dst_replica = 0 } ] |]
  in
  Alcotest.(check (list int)) "selected sender" [ 1 ]
    (Comm_plan.senders_to sel ~eps:1 0 ~dst_replica:0);
  Alcotest.(check (list int)) "all-to-all senders" [ 0; 1 ]
    (Comm_plan.senders_to Comm_plan.All_to_all ~eps:1 0 ~dst_replica:0)

let test_is_one_to_one () =
  let p s d = { Comm_plan.src_replica = s; dst_replica = d } in
  check_bool "valid bijection" true
    (Comm_plan.is_one_to_one [ p 0 1; p 1 0 ] ~eps:1);
  check_bool "repeated source" false
    (Comm_plan.is_one_to_one [ p 0 0; p 0 1 ] ~eps:1);
  check_bool "repeated target" false
    (Comm_plan.is_one_to_one [ p 0 0; p 1 0 ] ~eps:1);
  check_bool "wrong cardinality" false
    (Comm_plan.is_one_to_one [ p 0 0 ] ~eps:1);
  check_bool "out of range" false
    (Comm_plan.is_one_to_one [ p 0 0; p 1 5 ] ~eps:1)

let test_is_one_to_one_edge_cases () =
  let p s d = { Comm_plan.src_replica = s; dst_replica = d } in
  (* a duplicated pair has the right length but repeats both endpoints *)
  check_bool "duplicate pair" false
    (Comm_plan.is_one_to_one [ p 0 1; p 0 1 ] ~eps:1);
  check_bool "negative source" false
    (Comm_plan.is_one_to_one [ p (-1) 0; p 1 1 ] ~eps:1);
  check_bool "negative target" false
    (Comm_plan.is_one_to_one [ p 0 (-1); p 1 1 ] ~eps:1);
  check_bool "source out of range" false
    (Comm_plan.is_one_to_one [ p 2 0; p 1 1 ] ~eps:1);
  check_bool "empty list" false (Comm_plan.is_one_to_one [] ~eps:1);
  (* eps = 0: the only bijection on one replica *)
  check_bool "singleton identity" true
    (Comm_plan.is_one_to_one [ p 0 0 ] ~eps:0);
  check_bool "empty at eps 0" false (Comm_plan.is_one_to_one [] ~eps:0);
  (* a 3-cycle is a perfectly good bijection, no need for the identity *)
  check_bool "3-cycle" true
    (Comm_plan.is_one_to_one [ p 0 1; p 1 2; p 2 0 ] ~eps:2)

(* ------------------------------------------------------------------ *)
(* Schedule construction and accessors                                 *)

let test_create_validation () =
  let inst = tiny_instance () in
  let reps = hand_replicas () in
  Alcotest.check_raises "eps out of range"
    (Invalid_argument "Schedule.create: eps out of range") (fun () ->
      ignore (Schedule.create ~instance:inst ~eps:2 ~replicas:reps
                ~comm:Comm_plan.All_to_all));
  let bad = hand_replicas () in
  bad.(1) <- [| bad.(1).(0) |];
  Alcotest.check_raises "wrong replica count"
    (Invalid_argument "Schedule.create: wrong replica count") (fun () ->
      ignore (Schedule.create ~instance:inst ~eps:1 ~replicas:bad
                ~comm:Comm_plan.All_to_all));
  let mislabeled = hand_replicas () in
  mislabeled.(0).(0) <- { (mislabeled.(0).(0)) with task = 2 } ;
  Alcotest.check_raises "mislabelled"
    (Invalid_argument "Schedule.create: replica mislabelled") (fun () ->
      ignore (Schedule.create ~instance:inst ~eps:1 ~replicas:mislabeled
                ~comm:Comm_plan.All_to_all));
  let bad_proc = hand_replicas () in
  bad_proc.(0).(0) <- { (bad_proc.(0).(0)) with proc = 9 } ;
  Alcotest.check_raises "bad processor"
    (Invalid_argument "Schedule.create: bad processor") (fun () ->
      ignore (Schedule.create ~instance:inst ~eps:1 ~replicas:bad_proc
                ~comm:Comm_plan.All_to_all));
  let bad_dur = hand_replicas () in
  bad_dur.(0).(0) <- { (bad_dur.(0).(0)) with finish = -1. } ;
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Schedule.create: negative duration") (fun () ->
      ignore (Schedule.create ~instance:inst ~eps:1 ~replicas:bad_dur
                ~comm:Comm_plan.All_to_all));
  Alcotest.check_raises "comm plan size"
    (Invalid_argument "Schedule.create: comm plan edge count") (fun () ->
      ignore (Schedule.create ~instance:inst ~eps:1 ~replicas:(hand_replicas ())
                ~comm:(Comm_plan.Selected [||])))

let test_accessors () =
  let s = hand_schedule () in
  check_int "eps" 1 (Schedule.eps s);
  check_int "n_replicas" 2 (Schedule.n_replicas s);
  check_int "proc of t2 replica 0" 1 (Schedule.proc_of s 2 0);
  Alcotest.(check (array int)) "assigned procs t2" [| 1; 0 |]
    (Schedule.assigned_procs s 2);
  (match Schedule.replica_on s 1 ~proc:1 with
  | Some rep -> check_int "replica_on finds index" 1 rep.Schedule.index
  | None -> Alcotest.fail "replica_on missed");
  check_bool "replica_on absent" true (Schedule.replica_on s 1 ~proc:5 = None)

let test_mapping_matrix () =
  let s = hand_schedule () in
  let x = Schedule.mapping_matrix s in
  check_bool "t0 on both" true (x.(0).(0) && x.(0).(1));
  check_bool "exactly v rows" true (Array.length x = 3)

let test_proc_timeline_sorted () =
  let s = hand_schedule () in
  let tl = Schedule.proc_timeline s 0 in
  let starts = List.map (fun rep -> rep.Schedule.start) tl in
  Alcotest.(check (list (float 1e-9))) "sorted" [ 0.; 2.; 5. ] starts

let test_bounds () =
  let s = hand_schedule () in
  check_float "M*" 8. (Schedule.latency_lower_bound s);
  check_float "M" 25. (Schedule.latency_upper_bound s)

let test_busy_time () =
  let s = hand_schedule () in
  check_float "P0 busy 2+3+5" 10. (Schedule.busy_time s 0);
  check_float "P1 busy 4+3+1" 8. (Schedule.busy_time s 1)

let test_message_count_all_to_all () =
  let s = hand_schedule () in
  (* every receiver is colocated with a sender replica (procs {0,1} for
     all tasks), so the intra-processor shortcut suppresses everything *)
  check_int "all local" 0 (Schedule.inter_processor_messages s);
  check_float "volume" 0. (Schedule.total_comm_volume s)

let test_message_count_spread () =
  (* Same chain but t1's replicas on disjoint procs from t0's: build a
     4-processor platform variant. *)
  let b = Ftsched_dag.Dag.Builder.create () in
  let t0 = Ftsched_dag.Dag.Builder.add_task b in
  let t1 = Ftsched_dag.Dag.Builder.add_task b in
  Ftsched_dag.Dag.Builder.add_edge b ~src:t0 ~dst:t1 ~volume:10.;
  let dag = Ftsched_dag.Dag.Builder.build b in
  let platform = Platform.homogeneous ~m:4 ~unit_delay:1. in
  let exec = [| [| 1.; 1.; 1.; 1. |]; [| 1.; 1.; 1.; 1. |] |] in
  let inst = Instance.create ~dag ~platform ~exec in
  let reps =
    [|
      [| r ~task:0 ~index:0 ~proc:0 ~s:0. ~f:1. ~ps:0. ~pf:1.;
         r ~task:0 ~index:1 ~proc:1 ~s:0. ~f:1. ~ps:0. ~pf:1. |];
      [| r ~task:1 ~index:0 ~proc:2 ~s:11. ~f:12. ~ps:11. ~pf:12.;
         r ~task:1 ~index:1 ~proc:3 ~s:11. ~f:12. ~ps:11. ~pf:12. |];
    |]
  in
  let s_all =
    Schedule.create ~instance:inst ~eps:1 ~replicas:reps
      ~comm:Comm_plan.All_to_all
  in
  check_int "4 cross messages" 4 (Schedule.inter_processor_messages s_all);
  check_float "40 units" 40. (Schedule.total_comm_volume s_all);
  let s_sel =
    Schedule.create ~instance:inst ~eps:1 ~replicas:reps
      ~comm:
        (Comm_plan.Selected
           [| [ { Comm_plan.src_replica = 0; dst_replica = 0 };
                { Comm_plan.src_replica = 1; dst_replica = 1 } ] |])
  in
  check_int "2 selected messages" 2 (Schedule.inter_processor_messages s_sel);
  assert_valid "selected" s_sel

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)

let test_validate_ok () = assert_valid "hand schedule" (hand_schedule ())

let test_validate_duplicate_proc () =
  let reps = hand_replicas () in
  reps.(0).(1) <- { (reps.(0).(1)) with proc = 0; finish = 2.; start = 0. } ;
  let s =
    Schedule.create ~instance:(tiny_instance ()) ~eps:1 ~replicas:reps
      ~comm:Comm_plan.All_to_all
  in
  let errs = Validate.distinct_replica_procs s in
  check_bool "caught" true
    (List.exists (fun e -> e.Validate.check = "distinct-procs") errs)

let test_validate_overlap () =
  let reps = hand_replicas () in
  (* force t1's P0 replica to start before t0's P0 replica finishes *)
  reps.(1).(0) <- { (reps.(1).(0)) with start = 1.; finish = 4. } ;
  let s =
    Schedule.create ~instance:(tiny_instance ()) ~eps:1 ~replicas:reps
      ~comm:Comm_plan.All_to_all
  in
  let errs = Validate.no_processor_overlap s in
  check_bool "caught" true
    (List.exists (fun e -> e.Validate.check = "no-overlap") errs)

let test_validate_early_start () =
  let reps = hand_replicas () in
  (* t2 on P1 starting at 0 cannot have its inputs *)
  reps.(2).(0) <- { (reps.(2).(0)) with start = 0.; finish = 1. } ;
  let s =
    Schedule.create ~instance:(tiny_instance ()) ~eps:1 ~replicas:reps
      ~comm:Comm_plan.All_to_all
  in
  let errs = Validate.data_feasible s in
  check_bool "caught" true
    (List.exists (fun e -> e.Validate.check = "arrival-opt") errs)

let test_validate_wrong_duration () =
  let reps = hand_replicas () in
  reps.(0).(0) <- { (reps.(0).(0)) with finish = 3. } ;
  let s =
    Schedule.create ~instance:(tiny_instance ()) ~eps:1 ~replicas:reps
      ~comm:Comm_plan.All_to_all
  in
  let errs = Validate.data_feasible s in
  check_bool "caught" true
    (List.exists (fun e -> e.Validate.check = "duration") errs)

let test_validate_selection_not_bijective () =
  let sel =
    Comm_plan.Selected
      [|
        [ { Comm_plan.src_replica = 0; dst_replica = 0 };
          { Comm_plan.src_replica = 1; dst_replica = 0 } ];
        [ { Comm_plan.src_replica = 0; dst_replica = 0 };
          { Comm_plan.src_replica = 1; dst_replica = 1 } ];
      |]
  in
  let s =
    Schedule.create ~instance:(tiny_instance ()) ~eps:1
      ~replicas:(hand_replicas ()) ~comm:sel
  in
  let errs = Validate.robust_selection s in
  check_bool "caught" true
    (List.exists (fun e -> e.Validate.check = "one-to-one") errs)

let test_validate_forced_internal () =
  (* edge t0->t1: t0 replica 0 on P0 is colocated with t1 replica 0 on P0,
     so sending to replica 1 instead violates the forced rule. *)
  let sel =
    Comm_plan.Selected
      [|
        [ { Comm_plan.src_replica = 0; dst_replica = 1 };
          { Comm_plan.src_replica = 1; dst_replica = 0 } ];
        [ { Comm_plan.src_replica = 0; dst_replica = 0 };
          { Comm_plan.src_replica = 1; dst_replica = 1 } ];
      |]
  in
  let s =
    Schedule.create ~instance:(tiny_instance ()) ~eps:1
      ~replicas:(hand_replicas ()) ~comm:sel
  in
  let errs = Validate.robust_selection s in
  check_bool "caught" true
    (List.exists (fun e -> e.Validate.check = "forced-internal") errs)

let test_survives_hand () =
  let s = hand_schedule () in
  check_bool "no failure" true (Validate.survives s ~failed:[||]);
  check_bool "P0 fails" true (Validate.survives s ~failed:[| 0 |]);
  check_bool "P1 fails" true (Validate.survives s ~failed:[| 1 |]);
  check_bool "both fail" false (Validate.survives s ~failed:[| 0; 1 |]);
  check_bool "exhaustive eps=1" true (Validate.survives_all_subsets s)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

module Metrics = Ftsched_schedule.Metrics

let test_metrics_cp_bound () =
  (* fastest execution along the chain: 2 + 3 + 1 = 6 *)
  check_float "cp bound" 6. (Metrics.critical_path_lower_bound (tiny_instance ()))

let test_metrics_hand_values () =
  let s = hand_schedule () in
  check_float "slr 8/6" (8. /. 6.) (Metrics.slr s);
  check_float "gslr 25/6" (25. /. 6.) (Metrics.guaranteed_slr s);
  check_float "sequential 6" 6. (Metrics.sequential_time (tiny_instance ()));
  check_float "speedup 6/8" 0.75 (Metrics.speedup s);
  (* busy: P0 = 10, P1 = 8; horizon M* = 8 *)
  check_float "utilization" ((10. +. 8.) /. (2. *. 8.)) (Metrics.avg_utilization s);
  check_float "imbalance 10/9" (10. /. 9.) (Metrics.load_imbalance s);
  check_float "inflation 18/6" 3. (Metrics.work_inflation s)

let prop_metrics_sane =
  QCheck.Test.make ~name:"metrics stay in sane ranges" ~count:40
    QCheck.(pair (int_range 0 2) (int_range 0 5000))
    (fun (eps, seed) ->
      let inst = random_instance ~seed ~m:6 () in
      let s = Ftsched_core.Ftsa.schedule ~seed inst ~eps in
      Metrics.slr s >= 1. -. 1e-9
      && Metrics.guaranteed_slr s >= Metrics.slr s -. 1e-9
      && Metrics.load_imbalance s >= 1. -. 1e-9
      && Metrics.work_inflation s >= float_of_int (eps + 1) -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

module Serialize = Ftsched_schedule.Serialize
module Ftsa = Ftsched_core.Ftsa
module Mc_ftsa = Ftsched_core.Mc_ftsa

let same_schedule a b =
  let ia = Schedule.instance a and ib = Schedule.instance b in
  let va = Instance.n_tasks ia in
  Instance.n_tasks ia = Instance.n_tasks ib
  && Instance.n_procs ia = Instance.n_procs ib
  && Schedule.eps a = Schedule.eps b
  && List.for_all
       (fun task ->
         Array.for_all2
           (fun (x : Schedule.replica) (y : Schedule.replica) -> x = y)
           (Schedule.replicas a task) (Schedule.replicas b task))
       (List.init va (fun i -> i))
  && Schedule.comm a = Schedule.comm b

let test_serialize_roundtrip_hand () =
  let s = hand_schedule () in
  let s' = Serialize.schedule_of_string (Serialize.schedule_to_string s) in
  check_bool "identical" true (same_schedule s s');
  assert_valid "parsed schedule" s'

let test_serialize_instance_roundtrip () =
  let inst = tiny_instance () in
  let inst' = Serialize.instance_of_string (Serialize.instance_to_string inst) in
  check_int "tasks" (Instance.n_tasks inst) (Instance.n_tasks inst');
  check_float "exact float" (Instance.exec inst 2 1) (Instance.exec inst' 2 1);
  check_float "delay" 0.5
    (Ftsched_platform.Platform.delay (Instance.platform inst') 0 1);
  check_float "volume"
    (Ftsched_dag.Dag.edge_volume (Instance.dag inst) 1)
    (Ftsched_dag.Dag.edge_volume (Instance.dag inst') 1)

let prop_serialize_roundtrip_random =
  QCheck.Test.make ~name:"serialization round-trips every scheduler output"
    ~count:25
    QCheck.(pair (int_range 0 2) (int_range 0 5000))
    (fun (eps, seed) ->
      let inst = random_instance ~seed ~n_tasks:20 ~m:5 () in
      List.for_all
        (fun s ->
          same_schedule s
            (Serialize.schedule_of_string (Serialize.schedule_to_string s)))
        [ Ftsa.schedule ~seed inst ~eps; Mc_ftsa.schedule ~seed inst ~eps ])

let test_serialize_redundant_plan_roundtrip () =
  (* plans with more than eps+1 pairs per edge must survive the format *)
  let inst = tiny_instance () in
  let s =
    Mc_ftsa.schedule ~strategy:(Mc_ftsa.Redundant 2) inst ~eps:1
  in
  let s' = Serialize.schedule_of_string (Serialize.schedule_to_string s) in
  check_bool "redundant roundtrip" true (same_schedule s s');
  assert_valid "parsed redundant schedule" s'

let test_serialize_file_roundtrip () =
  let s = hand_schedule () in
  let path = Filename.temp_file "ftsched" ".sched" in
  Serialize.save_schedule s ~path;
  let s' = Serialize.load_schedule ~path in
  Sys.remove path;
  check_bool "file roundtrip" true (same_schedule s s')

(* ---- regression: label whitespace handling --------------------------
   The format stores a label as the tail of a space-separated line, so
   only labels invariant under whitespace normalization can come back
   identical.  Offending labels used to round-trip silently changed;
   they are now rejected at serialization time. *)

let instance_with_label label =
  let b = Dag.Builder.create () in
  ignore (Dag.Builder.add_task ~label b);
  Instance.create
    ~dag:(Dag.Builder.build b)
    ~platform:(Platform.homogeneous ~m:2 ~unit_delay:0.5)
    ~exec:[| [| 1.; 2. |] |]

let test_serialize_label_rejection () =
  let rejected label =
    try
      ignore (Serialize.instance_to_string (instance_with_label label));
      false
    with Invalid_argument _ -> true
  in
  check_bool "trailing space" true (rejected "task ");
  check_bool "leading space" true (rejected " task");
  check_bool "double space" true (rejected "a  b");
  check_bool "tab" true (rejected "a\tb");
  check_bool "newline" true (rejected "a\nb");
  check_bool "single internal space ok" false (rejected "matrix multiply");
  let inst' =
    Serialize.instance_of_string
      (Serialize.instance_to_string (instance_with_label "matrix multiply"))
  in
  Alcotest.(check string)
    "label preserved" "matrix multiply"
    (Dag.label (Instance.dag inst') 0)

let prop_label_roundtrip_or_reject =
  QCheck.Test.make
    ~name:"adversarial labels either round-trip exactly or are rejected"
    ~count:300
    QCheck.(
      string_gen_of_size
        Gen.(int_range 0 12)
        (Gen.oneofl [ ' '; '\t'; '\n'; '\r'; 'a'; 'b'; '_'; '-'; '.' ]))
    (fun label ->
      match Serialize.instance_to_string (instance_with_label label) with
      | exception Invalid_argument _ -> true
      | str -> Dag.label (Instance.dag (Serialize.instance_of_string str)) 0
               = label)

(* ---- regression: out-of-range fields rejected at their own line ---- *)

let map_first_line pred f s =
  let seen = ref false in
  String.split_on_char '\n' s
  |> List.map (fun l ->
         if (not !seen) && pred l then begin
           seen := true;
           f l
         end
         else l)
  |> String.concat "\n"

let starts_with prefix l =
  String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

let rejects_with_line_error str =
  try
    ignore (Serialize.schedule_of_string str);
    false
  with Failure msg -> contains msg "line" && contains msg "out of range"

let test_serialize_rejects_out_of_range () =
  let base = Serialize.schedule_to_string (hand_schedule ()) in
  (* replica on a processor the platform does not have *)
  let bad_proc =
    map_first_line (starts_with "replica ")
      (fun l ->
        match String.split_on_char ' ' l with
        | tag :: task :: index :: _proc :: rest ->
            String.concat " " (tag :: task :: index :: "9" :: rest)
        | _ -> l)
      base
  in
  check_bool "replica proc out of range" true (rejects_with_line_error bad_proc);
  (* eps >= m in the schedule header *)
  let bad_eps =
    map_first_line (starts_with "schedule ") (fun _ -> "schedule 5") base
  in
  check_bool "eps out of range" true (rejects_with_line_error bad_eps);
  (* MC pair referencing a replica index beyond eps *)
  let sel =
    Serialize.schedule_to_string (Mc_ftsa.schedule ~seed:0 (tiny_instance ()) ~eps:1)
  in
  let bad_pair =
    map_first_line (starts_with "pairs ")
      (fun l ->
        match String.split_on_char ' ' l with
        | tag :: idx :: _first :: rest ->
            String.concat " " (tag :: idx :: "7:0" :: rest)
        | _ -> l)
      sel
  in
  check_bool "pair replica out of range" true (rejects_with_line_error bad_pair)

let test_serialize_rejects_garbage () =
  check_bool "bad magic" true
    (try
       ignore (Serialize.schedule_of_string "not a schedule\n");
       false
     with Failure _ -> true);
  (* the hardened parser rejects the declared counts up front (typed
     [Invalid_argument]) instead of running out of lines mid-parse *)
  check_bool "truncated" true
    (try
       ignore
         (Serialize.schedule_of_string "ftsched v1\ninstance 2 2 0\nlabel a\n");
       false
     with Failure _ | Invalid_argument _ -> true)

(* ---- regression: unsorted timelines are an explicit error ----------
   The overlap scan only compares adjacent entries; on an unsorted
   timeline it used to silently miss overlaps. *)

let test_validate_unsorted_timeline () =
  let early = r ~task:1 ~index:0 ~proc:0 ~s:2. ~f:3. ~ps:2. ~pf:3. in
  let late = r ~task:0 ~index:0 ~proc:0 ~s:5. ~f:6. ~ps:5. ~pf:6. in
  let errs = Validate.timeline_errors ~proc:0 [ late; early ] in
  check_bool "reports unsorted-timeline" true
    (List.exists (fun e -> e.Validate.check = "unsorted-timeline") errs);
  check_int "sorted order clean" 0
    (List.length (Validate.timeline_errors ~proc:0 [ early; late ]));
  (* an overlap is still an overlap when the list is sorted *)
  let clash = r ~task:2 ~index:0 ~proc:0 ~s:2.5 ~f:4. ~ps:2.5 ~pf:4. in
  check_bool "overlap still reported" true
    (List.exists
       (fun e -> e.Validate.check = "no-overlap")
       (Validate.timeline_errors ~proc:0 [ early; clash; late ]))

(* ------------------------------------------------------------------ *)
(* Gantt                                                               *)

let test_gantt_render () =
  let s = hand_schedule () in
  let out = Gantt.render ~width:40 s in
  check_bool "has P0 row" true (contains out "P0");
  check_bool "has P1 row" true (contains out "P1");
  check_bool "mentions horizon" true (contains out "horizon");
  let listing = Gantt.render_listing s in
  check_bool "listing has task 2" true (contains listing "task 2")

let test_gantt_svg () =
  let s = hand_schedule () in
  let svg = Gantt.render_svg s in
  check_bool "is svg" true (contains svg "<svg");
  check_bool "closes svg" true (contains svg "</svg>");
  check_bool "has rects" true (contains svg "<rect");
  check_bool "labels procs" true (contains svg ">P1</text>");
  (* six replicas -> six rect blocks *)
  let rects =
    List.length (String.split_on_char '\n' svg)
    - List.length
        (List.filter
           (fun l -> not (contains l "<rect"))
           (String.split_on_char '\n' svg))
  in
  check_int "one rect per replica" 6 rects

let () =
  Alcotest.run "schedule"
    [
      ( "comm-plan",
        [
          Alcotest.test_case "all-to-all pairs" `Quick test_all_to_all_pairs;
          Alcotest.test_case "senders_to" `Quick test_senders_to;
          Alcotest.test_case "is_one_to_one" `Quick test_is_one_to_one;
          Alcotest.test_case "is_one_to_one edge cases" `Quick
            test_is_one_to_one_edge_cases;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "mapping matrix" `Quick test_mapping_matrix;
          Alcotest.test_case "timeline sorted" `Quick test_proc_timeline_sorted;
          Alcotest.test_case "bounds M*/M" `Quick test_bounds;
          Alcotest.test_case "busy time" `Quick test_busy_time;
          Alcotest.test_case "messages: intra shortcut" `Quick
            test_message_count_all_to_all;
          Alcotest.test_case "messages: spread procs" `Quick
            test_message_count_spread;
        ] );
      ( "validate",
        [
          Alcotest.test_case "hand schedule ok" `Quick test_validate_ok;
          Alcotest.test_case "duplicate proc" `Quick test_validate_duplicate_proc;
          Alcotest.test_case "overlap" `Quick test_validate_overlap;
          Alcotest.test_case "early start" `Quick test_validate_early_start;
          Alcotest.test_case "wrong duration" `Quick test_validate_wrong_duration;
          Alcotest.test_case "selection not bijective" `Quick
            test_validate_selection_not_bijective;
          Alcotest.test_case "forced internal rule" `Quick
            test_validate_forced_internal;
          Alcotest.test_case "survives" `Quick test_survives_hand;
          Alcotest.test_case "unsorted timeline" `Quick
            test_validate_unsorted_timeline;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "cp bound" `Quick test_metrics_cp_bound;
          Alcotest.test_case "hand values" `Quick test_metrics_hand_values;
          quick prop_metrics_sane;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "hand roundtrip" `Quick test_serialize_roundtrip_hand;
          Alcotest.test_case "instance roundtrip" `Quick
            test_serialize_instance_roundtrip;
          Alcotest.test_case "redundant plan roundtrip" `Quick
            test_serialize_redundant_plan_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_serialize_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
          Alcotest.test_case "label rejection" `Quick
            test_serialize_label_rejection;
          Alcotest.test_case "out-of-range fields" `Quick
            test_serialize_rejects_out_of_range;
          quick prop_serialize_roundtrip_random;
          quick prop_label_roundtrip_or_reject;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "render" `Quick test_gantt_render;
          Alcotest.test_case "svg" `Quick test_gantt_svg;
        ] );
    ]
