(* Tests for Ftsched_dag: builder, accessors, properties, generators,
   classic graphs, DOT export. *)

module Dag = Ftsched_dag.Dag
module Properties = Ftsched_dag.Properties
module Generators = Ftsched_dag.Generators
module Classic = Ftsched_dag.Classic
module Dot = Ftsched_dag.Dot
module Rng = Ftsched_util.Rng
open Helpers

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

let chain3 () =
  let b = Dag.Builder.create () in
  let t0 = Dag.Builder.add_task ~label:"a" b in
  let t1 = Dag.Builder.add_task b in
  let t2 = Dag.Builder.add_task b in
  Dag.Builder.add_edge b ~src:t0 ~dst:t1 ~volume:1.;
  Dag.Builder.add_edge b ~src:t1 ~dst:t2 ~volume:2.;
  Dag.Builder.build b

let test_builder_basic () =
  let g = chain3 () in
  check_int "tasks" 3 (Dag.n_tasks g);
  check_int "edges" 2 (Dag.n_edges g);
  Alcotest.(check string) "label" "a" (Dag.label g 0);
  Alcotest.(check string) "default label" "t1" (Dag.label g 1);
  Alcotest.(check (list int)) "entries" [ 0 ] (Dag.entries g);
  Alcotest.(check (list int)) "exits" [ 2 ] (Dag.exits g);
  check_float "volume" 2. (Dag.edge_volume g 1);
  check_int "in degree" 1 (Dag.in_degree g 1);
  check_int "out degree" 1 (Dag.out_degree g 1)

let test_builder_rejects_cycle () =
  let b = Dag.Builder.create () in
  let t0 = Dag.Builder.add_task b in
  let t1 = Dag.Builder.add_task b in
  Dag.Builder.add_edge b ~src:t0 ~dst:t1 ~volume:1.;
  Dag.Builder.add_edge b ~src:t1 ~dst:t0 ~volume:1.;
  Alcotest.check_raises "cycle"
    (Invalid_argument "Dag.Builder.build: graph has a cycle") (fun () ->
      ignore (Dag.Builder.build b))

let test_builder_rejects_self_loop () =
  let b = Dag.Builder.create () in
  let t0 = Dag.Builder.add_task b in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Dag.Builder.add_edge: self loop") (fun () ->
      Dag.Builder.add_edge b ~src:t0 ~dst:t0 ~volume:1.)

let test_builder_rejects_duplicate () =
  let b = Dag.Builder.create () in
  let t0 = Dag.Builder.add_task b in
  let t1 = Dag.Builder.add_task b in
  Dag.Builder.add_edge b ~src:t0 ~dst:t1 ~volume:1.;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Dag.Builder.add_edge: duplicate edge") (fun () ->
      Dag.Builder.add_edge b ~src:t0 ~dst:t1 ~volume:2.)

let test_builder_rejects_bad_volume () =
  let b = Dag.Builder.create () in
  let t0 = Dag.Builder.add_task b in
  let t1 = Dag.Builder.add_task b in
  Alcotest.check_raises "negative volume"
    (Invalid_argument "Dag.Builder.add_edge: volume") (fun () ->
      Dag.Builder.add_edge b ~src:t0 ~dst:t1 ~volume:(-1.))

let test_builder_rejects_unknown_task () =
  let b = Dag.Builder.create () in
  let t0 = Dag.Builder.add_task b in
  Alcotest.check_raises "unknown dst"
    (Invalid_argument "Dag.Builder.add_edge: dst") (fun () ->
      Dag.Builder.add_edge b ~src:t0 ~dst:42 ~volume:1.)

let test_find_edge () =
  let g = chain3 () in
  check_bool "found" true (Dag.find_edge g ~src:0 ~dst:1 <> None);
  check_bool "absent" true (Dag.find_edge g ~src:0 ~dst:2 = None)

let test_total_volume () =
  check_float "total" 3. (Dag.total_volume (chain3 ()))

(* random DAG arbitrary via seeds *)
let seed_arb = QCheck.int_range 0 5000

let random_dag seed =
  let rng = Rng.create ~seed in
  let n = 5 + Rng.int rng 80 in
  if Rng.bool rng then Generators.layered rng ~n_tasks:n ()
  else Generators.erdos_renyi rng ~n_tasks:n ~edge_prob:0.15 ()

let prop_topo_order_valid =
  QCheck.Test.make ~name:"topological_order respects every edge" ~count:200
    seed_arb
    (fun seed ->
      let g = random_dag seed in
      let pos = Array.make (Dag.n_tasks g) (-1) in
      Array.iteri (fun i t -> pos.(t) <- i) (Dag.topological_order g);
      Dag.fold_edges g ~init:true ~f:(fun acc _ ~src ~dst ~volume:_ ->
          acc && pos.(src) < pos.(dst)))

let prop_succs_preds_dual =
  QCheck.Test.make ~name:"succs/preds are dual" ~count:100 seed_arb
    (fun seed ->
      let g = random_dag seed in
      let ok = ref true in
      for u = 0 to Dag.n_tasks g - 1 do
        List.iter
          (fun (v, vol) ->
            if not (List.exists (fun (u', vol') -> u' = u && vol' = vol)
                      (Dag.preds g v))
            then ok := false)
          (Dag.succs g u)
      done;
      let count_preds =
        List.init (Dag.n_tasks g) (fun v -> List.length (Dag.preds g v))
        |> List.fold_left ( + ) 0
      in
      !ok && count_preds = Dag.n_edges g)

let prop_edge_endpoints_consistent =
  QCheck.Test.make ~name:"edge ids consistent with adjacency" ~count:100
    seed_arb
    (fun seed ->
      let g = random_dag seed in
      let ok = ref true in
      for u = 0 to Dag.n_tasks g - 1 do
        List.iter
          (fun e ->
            let s, _ = Dag.edge_endpoints g e in
            if s <> u then ok := false)
          (Dag.out_edges g u);
        List.iter
          (fun e ->
            let _, d = Dag.edge_endpoints g e in
            if d <> u then ok := false)
          (Dag.in_edges g u)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let test_depth_chain () =
  let g = chain3 () in
  Alcotest.(check (array int)) "depths" [| 0; 1; 2 |] (Properties.depth g);
  check_int "height" 3 (Properties.height g)

let test_level_sizes () =
  let g = Classic.diamond ~layers:3 () in
  (* widths 1,2,3,2,1 *)
  Alcotest.(check (array int)) "levels" [| 1; 2; 3; 2; 1 |]
    (Properties.level_sizes g)

let test_width_bound_fork_join () =
  let rng = Rng.create ~seed:1 in
  let g = Generators.fork_join rng ~stages:2 ~width:7 () in
  check_bool "width bound >= 7" true (Properties.width_upper_bound g >= 7)

let test_longest_path_chain () =
  let g = chain3 () in
  let len =
    Properties.longest_path g
      ~node_weight:(fun _ -> 10.)
      ~edge_weight:(fun e -> Dag.edge_volume g e)
  in
  check_float "10+1+10+2+10" 33. len

let test_critical_path_tasks () =
  let g = chain3 () in
  let cp =
    Properties.critical_path_tasks g
      ~node_weight:(fun _ -> 1.)
      ~edge_weight:(fun _ -> 0.)
  in
  Alcotest.(check (list int)) "whole chain" [ 0; 1; 2 ] cp

let prop_critical_path_achieves_length =
  QCheck.Test.make ~name:"critical path achieves longest_path" ~count:100
    seed_arb
    (fun seed ->
      let g = random_dag seed in
      let nw _ = 3. and ew e = Dag.edge_volume g e in
      let len = Properties.longest_path g ~node_weight:nw ~edge_weight:ew in
      let cp = Properties.critical_path_tasks g ~node_weight:nw ~edge_weight:ew in
      (* sum the path *)
      let rec path_len = function
        | [] -> 0.
        | [ t ] -> nw t
        | a :: (b :: _ as rest) ->
            let e =
              match Dag.find_edge g ~src:a ~dst:b with
              | Some e -> e
              | None -> invalid_arg "not a path"
            in
            nw a +. ew e +. path_len rest
      in
      Float.abs (path_len cp -. len) < 1e-6)

let test_connectivity () =
  let g = chain3 () in
  check_bool "chain connected" true (Properties.is_connected_undirected g);
  let b = Dag.Builder.create () in
  let _ = Dag.Builder.add_task b in
  let _ = Dag.Builder.add_task b in
  let g2 = Dag.Builder.build b in
  check_bool "two isolated tasks" false (Properties.is_connected_undirected g2)

let test_transitive_edges () =
  (* triangle a->b->c plus shortcut a->c: one transitive edge *)
  let b = Dag.Builder.create () in
  let a = Dag.Builder.add_task b in
  let c = Dag.Builder.add_task b in
  let d = Dag.Builder.add_task b in
  Dag.Builder.add_edge b ~src:a ~dst:c ~volume:1.;
  Dag.Builder.add_edge b ~src:c ~dst:d ~volume:1.;
  Dag.Builder.add_edge b ~src:a ~dst:d ~volume:1.;
  let g = Dag.Builder.build b in
  check_int "one transitive edge" 1 (Properties.transitive_edge_count g);
  check_int "chain has none" 0 (Properties.transitive_edge_count (chain3 ()))

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let prop_layered_size_and_connect =
  QCheck.Test.make ~name:"layered: exact size, connected, entries on level 0"
    ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 2 120))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let g = Generators.layered rng ~n_tasks:n () in
      Dag.n_tasks g = n
      && Properties.is_connected_undirected g
      && List.for_all (fun t -> Dag.in_degree g t = 0) (Dag.entries g))

let prop_layered_no_isolated_task =
  QCheck.Test.make ~name:"layered: no isolated tasks" ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 2 100))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let g = Generators.layered rng ~n_tasks:n () in
      List.for_all
        (fun t -> Dag.in_degree g t + Dag.out_degree g t > 0)
        (List.init (Dag.n_tasks g) (fun i -> i)))

let test_erdos_extremes () =
  let rng = Rng.create ~seed:5 in
  let g0 = Generators.erdos_renyi rng ~n_tasks:10 ~edge_prob:0. () in
  check_int "p=0 no edges" 0 (Dag.n_edges g0);
  let g1 = Generators.erdos_renyi rng ~n_tasks:10 ~edge_prob:1. () in
  check_int "p=1 complete dag" 45 (Dag.n_edges g1)

let test_fork_join_shape () =
  let rng = Rng.create ~seed:2 in
  let stages = 3 and width = 5 in
  let g = Generators.fork_join rng ~stages ~width () in
  check_int "task count" (stages * (width + 2)) (Dag.n_tasks g);
  check_int "entries" 1 (List.length (Dag.entries g));
  check_int "exits" 1 (List.length (Dag.exits g))

let prop_out_tree =
  QCheck.Test.make ~name:"random_out_tree: single root, in-degree <= 1"
    ~count:100
    QCheck.(pair (int_range 0 500) (int_range 1 60))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let g = Generators.random_out_tree rng ~n_tasks:n ~max_children:3 () in
      Dag.n_tasks g = n
      && Dag.n_edges g = n - 1
      && List.length (Dag.entries g) = 1
      && List.for_all
           (fun t -> Dag.in_degree g t <= 1)
           (List.init n (fun i -> i))
      && List.for_all
           (fun t -> Dag.out_degree g t <= 3)
           (List.init n (fun i -> i)))

let prop_pegasus_shape =
  QCheck.Test.make
    ~name:"pegasus: exact size, connected, edges stay ~2x tasks" ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 2 4000))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let g = Generators.pegasus rng ~n_tasks:n () in
      Dag.n_tasks g = n
      && Properties.is_connected_undirected g
      && Dag.n_edges g <= 3 * n
      && List.for_all (fun t -> Dag.in_degree g t = 0) (Dag.entries g))

let test_chain_gen () =
  let rng = Rng.create ~seed:3 in
  let g = Generators.chain rng ~n_tasks:7 () in
  check_int "edges" 6 (Dag.n_edges g);
  check_int "height" 7 (Properties.height g)

let prop_volume_in_range =
  QCheck.Test.make ~name:"generator volumes in requested range" ~count:50
    QCheck.(int_range 0 500)
    (fun seed ->
      let rng = Rng.create ~seed in
      let g =
        Generators.layered rng ~n_tasks:40
          ~volume:(Generators.Uniform_volume (50., 150.))
          ()
      in
      Dag.fold_edges g ~init:true ~f:(fun acc _ ~src:_ ~dst:_ ~volume ->
          acc && volume >= 50. && volume < 150.))

(* Every generator entry point must reject bad parameters with a typed
   Invalid_argument naming the offending generator — never a bare
   assert, which -noassert compiles out (the PR-10 bugfix).  A silent
   pass would let lo > hi or NaN bounds poison volumes downstream. *)
let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument msg ->
      if not (String.length msg >= 11 && String.sub msg 0 11 = "Generators.")
      then
        Alcotest.failf "%s: message %S does not name the generator" what msg

let test_generators_reject_bad_counts () =
  let rng = Rng.create ~seed:0 in
  expect_invalid "layered n=0" (fun () ->
      Generators.layered rng ~n_tasks:0 ());
  expect_invalid "layered n<0" (fun () ->
      Generators.layered rng ~n_tasks:(-3) ());
  expect_invalid "layered fatness" (fun () ->
      Generators.layered rng ~n_tasks:10 ~fatness:(-1.) ());
  expect_invalid "layered density nan" (fun () ->
      Generators.layered rng ~n_tasks:10 ~density:Float.nan ());
  expect_invalid "layered density > 1" (fun () ->
      Generators.layered rng ~n_tasks:10 ~density:1.5 ());
  expect_invalid "erdos n=0" (fun () ->
      Generators.erdos_renyi rng ~n_tasks:0 ~edge_prob:0.5 ());
  expect_invalid "erdos p<0" (fun () ->
      Generators.erdos_renyi rng ~n_tasks:5 ~edge_prob:(-0.1) ());
  expect_invalid "erdos p nan" (fun () ->
      Generators.erdos_renyi rng ~n_tasks:5 ~edge_prob:Float.nan ());
  expect_invalid "fork_join stages=0" (fun () ->
      Generators.fork_join rng ~stages:0 ~width:3 ());
  expect_invalid "fork_join width=0" (fun () ->
      Generators.fork_join rng ~stages:2 ~width:0 ());
  expect_invalid "out_tree n=0" (fun () ->
      Generators.random_out_tree rng ~n_tasks:0 ~max_children:2 ());
  expect_invalid "out_tree max_children=0" (fun () ->
      Generators.random_out_tree rng ~n_tasks:5 ~max_children:0 ());
  expect_invalid "pegasus n=0" (fun () -> Generators.pegasus rng ~n_tasks:0 ());
  expect_invalid "chain n=0" (fun () -> Generators.chain rng ~n_tasks:0 ())

let test_generators_reject_bad_volumes () =
  let rng = Rng.create ~seed:0 in
  let bad_specs =
    [
      ("lo > hi", Generators.Uniform_volume (150., 50.));
      ("negative lo", Generators.Uniform_volume (-1., 10.));
      ("nan bound", Generators.Uniform_volume (Float.nan, 10.));
      ("inf bound", Generators.Uniform_volume (0., Float.infinity));
      ("negative constant", Generators.Constant_volume (-5.));
      ("nan constant", Generators.Constant_volume Float.nan);
    ]
  in
  List.iter
    (fun (what, volume) ->
      expect_invalid ("draw_volume " ^ what) (fun () ->
          Generators.draw_volume rng volume);
      expect_invalid ("layered " ^ what) (fun () ->
          Generators.layered rng ~n_tasks:10 ~volume ());
      expect_invalid ("chain " ^ what) (fun () ->
          Generators.chain rng ~n_tasks:10 ~volume ()))
    bad_specs;
  (* lo = hi is a degenerate but legal range *)
  let g =
    Generators.chain rng ~n_tasks:3
      ~volume:(Generators.Uniform_volume (7., 7.))
      ()
  in
  Dag.iter_edges g (fun _ ~src:_ ~dst:_ ~volume ->
      check_float "degenerate range" 7. volume)

(* ------------------------------------------------------------------ *)
(* CSR adjacency: the flat arrays the kernel hot path iterates must
   agree with the list API on every family the fuzzer draws from.      *)

(* the five fuzz families (lib/fuzz gen_case), at property-test sizes *)
let family_dag seed =
  let rng = Rng.create ~seed in
  let n = 2 + Rng.int rng 100 in
  match Rng.int rng 5 with
  | 0 -> Generators.layered rng ~n_tasks:n ()
  | 1 -> Generators.erdos_renyi rng ~n_tasks:n ~edge_prob:0.3 ()
  | 2 ->
      Generators.fork_join rng ~stages:(1 + (n / 6)) ~width:(2 + Rng.int rng 3)
        ()
  | 3 -> Generators.random_out_tree rng ~n_tasks:n ~max_children:3 ()
  | _ -> Generators.chain rng ~n_tasks:n ()

let prop_csr_matches_lists =
  QCheck.Test.make
    ~name:"Csr predecessor/successor rows equal in_edges/out_edges" ~count:200
    seed_arb
    (fun seed ->
      let g = family_dag seed in
      let module Csr = Dag.Csr in
      let p_off = Csr.pred_offsets g and s_off = Csr.succ_offsets g in
      let p_edges = Csr.pred_edges g and s_edges = Csr.succ_edges g in
      let p_tasks = Csr.pred_tasks g and s_tasks = Csr.succ_tasks g in
      let p_vols = Csr.pred_volumes g in
      let ok = ref (Array.length p_off = Dag.n_tasks g + 1) in
      for t = 0 to Dag.n_tasks g - 1 do
        (* row [t] of the predecessor CSR is in_edges/preds in order *)
        let row = List.init (p_off.(t + 1) - p_off.(t)) (fun i -> p_off.(t) + i) in
        if List.map (fun k -> p_edges.(k)) row <> Dag.in_edges g t then
          ok := false;
        if
          List.map (fun k -> (p_tasks.(k), p_vols.(k))) row <> Dag.preds g t
        then ok := false;
        (* successor CSR likewise *)
        let srow = List.init (s_off.(t + 1) - s_off.(t)) (fun i -> s_off.(t) + i) in
        if List.map (fun k -> s_edges.(k)) srow <> Dag.out_edges g t then
          ok := false;
        if
          List.map (fun k -> s_tasks.(k)) srow
          <> List.map fst (Dag.succs g t)
        then ok := false;
        (* O(1) degrees agree with the offsets *)
        if Dag.in_degree g t <> p_off.(t + 1) - p_off.(t) then ok := false;
        if Dag.out_degree g t <> s_off.(t + 1) - s_off.(t) then ok := false
      done;
      !ok)

let prop_csr_entries_exits =
  QCheck.Test.make ~name:"Csr entries/exits equal Dag.entries/exits"
    ~count:200 seed_arb
    (fun seed ->
      let g = family_dag seed in
      Array.to_list (Dag.Csr.entries g) = Dag.entries g
      && Array.to_list (Dag.Csr.exits g) = Dag.exits g)

(* ------------------------------------------------------------------ *)
(* Classic graphs                                                      *)

let test_gauss_structure () =
  let size = 5 in
  let g = Classic.gaussian_elimination ~size () in
  (* one pivot + (size-1-k) updates per step k = 0..size-2 *)
  let expected =
    List.init (size - 1) (fun k -> 1 + (size - 1 - k))
    |> List.fold_left ( + ) 0
  in
  check_int "task count" expected (Dag.n_tasks g);
  check_int "single entry" 1 (List.length (Dag.entries g))

let test_fft_structure () =
  let g = Classic.fft ~points:8 () in
  check_int "tasks (log2(8)+1)*8" 32 (Dag.n_tasks g);
  check_int "edges 2*stages*points" 48 (Dag.n_edges g);
  check_int "entries" 8 (List.length (Dag.entries g));
  check_int "exits" 8 (List.length (Dag.exits g));
  check_int "height" 4 (Properties.height g)

let test_fft_rejects_non_power () =
  check_bool "assert fires" true
    (try
       ignore (Classic.fft ~points:6 ());
       false
     with Assert_failure _ -> true)

let test_wavefront_structure () =
  let g = Classic.wavefront ~rows:4 ~cols:5 () in
  check_int "tasks" 20 (Dag.n_tasks g);
  check_int "edges" ((2 * 4 * 5) - 4 - 5) (Dag.n_edges g);
  check_int "height = rows+cols-1" 8 (Properties.height g)

let test_diamond_structure () =
  let g = Classic.diamond ~layers:4 () in
  check_int "tasks 1+2+3+4+3+2+1" 16 (Dag.n_tasks g);
  check_int "entry" 1 (List.length (Dag.entries g));
  check_int "exit" 1 (List.length (Dag.exits g))

let test_cholesky_structure () =
  let count t =
    (* POTRF + TRSM + SYRK + GEMM *)
    t + (t * (t - 1) / 2 * 2) + (t * (t - 1) * (t - 2) / 6)
  in
  List.iter
    (fun t ->
      let g = Classic.cholesky ~tiles:t () in
      check_int (Printf.sprintf "tiles=%d tasks" t) (count t) (Dag.n_tasks g);
      (* the critical path POTRF->TRSM->SYRK per step gives height 3t-2 *)
      check_int (Printf.sprintf "tiles=%d height" t) ((3 * t) - 2)
        (Properties.height g);
      check_int "single entry (potrf 0)" 1 (List.length (Dag.entries g)))
    [ 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* STG interchange                                                     *)

module Stg = Ftsched_dag.Stg

let sample_stg = "# a diamond\n4\n0 3 0\n1 5 1 0\n2 7 1 0\n3 2 2 1 2\n"

let test_stg_parse () =
  let g, costs = Stg.parse sample_stg in
  check_int "tasks" 4 (Dag.n_tasks g);
  check_int "edges" 4 (Dag.n_edges g);
  Alcotest.(check (array (float 1e-9))) "costs" [| 3.; 5.; 7.; 2. |] costs;
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ]
    (List.sort compare (List.map fst (Dag.preds g 3)))

let test_stg_roundtrip () =
  let g, costs = Stg.parse sample_stg in
  let g', costs' = Stg.parse (Stg.to_string g ~costs) in
  check_int "tasks" (Dag.n_tasks g) (Dag.n_tasks g');
  check_int "edges" (Dag.n_edges g) (Dag.n_edges g');
  Alcotest.(check (array (float 1e-9))) "costs" costs costs'

let prop_stg_roundtrip_random =
  QCheck.Test.make ~name:"STG round-trips generated graphs" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let g = Generators.layered rng ~n_tasks:30 () in
      let costs = Array.init 30 (fun i -> float_of_int (i + 1)) in
      let g', costs' = Stg.parse (Stg.to_string g ~costs) in
      Dag.n_tasks g' = 30 && Dag.n_edges g' = Dag.n_edges g && costs = costs'
      && List.for_all
           (fun t ->
             List.sort compare (List.map fst (Dag.preds g t))
             = List.sort compare (List.map fst (Dag.preds g' t)))
           (List.init 30 (fun i -> i)))

let test_stg_errors () =
  let fails s =
    try
      ignore (Stg.parse s);
      false
    with Failure _ -> true
  in
  check_bool "empty" true (fails "");
  check_bool "bad count" true (fails "x\n");
  check_bool "missing lines" true (fails "3\n0 1 0\n");
  check_bool "id disorder" true (fails "2\n1 1 0\n0 1 0\n");
  check_bool "pred count mismatch" true (fails "2\n0 1 0\n1 1 2 0\n");
  check_bool "pred out of range" true (fails "2\n0 1 0\n1 1 1 7\n");
  check_bool "cycle via self" true (fails "1\n0 1 1 0\n")

let test_stg_edge_volume () =
  let g, _ = Stg.parse ~edge_volume:42. sample_stg in
  check_float "volume" 42. (Dag.edge_volume g 0)

(* ------------------------------------------------------------------ *)
(* DOT                                                                 *)

let test_dot_output () =
  let g = chain3 () in
  let dot = Dot.to_dot ~name:"test" g in
  check_bool "digraph" true (contains dot "digraph \"test\"");
  check_bool "node" true (contains dot "n0 [label=\"a\"]");
  check_bool "edge" true (contains dot "n0 -> n1");
  check_bool "volume label" true (contains dot "label=\"1\"")

let test_dot_escaping () =
  let b = Dag.Builder.create () in
  let _ = Dag.Builder.add_task ~label:"with \"quote\"" b in
  let g = Dag.Builder.build b in
  let dot = Dot.to_dot g in
  check_bool "escaped" true (contains dot "\\\"quote\\\"")

let () =
  Alcotest.run "dag"
    [
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "rejects cycle" `Quick test_builder_rejects_cycle;
          Alcotest.test_case "rejects self loop" `Quick test_builder_rejects_self_loop;
          Alcotest.test_case "rejects duplicate" `Quick test_builder_rejects_duplicate;
          Alcotest.test_case "rejects bad volume" `Quick test_builder_rejects_bad_volume;
          Alcotest.test_case "rejects unknown task" `Quick test_builder_rejects_unknown_task;
          Alcotest.test_case "find_edge" `Quick test_find_edge;
          Alcotest.test_case "total_volume" `Quick test_total_volume;
          quick prop_topo_order_valid;
          quick prop_succs_preds_dual;
          quick prop_edge_endpoints_consistent;
        ] );
      ( "properties",
        [
          Alcotest.test_case "depth of chain" `Quick test_depth_chain;
          Alcotest.test_case "level sizes" `Quick test_level_sizes;
          Alcotest.test_case "width bound" `Quick test_width_bound_fork_join;
          Alcotest.test_case "longest path" `Quick test_longest_path_chain;
          Alcotest.test_case "critical path tasks" `Quick test_critical_path_tasks;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "transitive edges" `Quick test_transitive_edges;
          quick prop_critical_path_achieves_length;
        ] );
      ( "generators",
        [
          quick prop_layered_size_and_connect;
          quick prop_layered_no_isolated_task;
          Alcotest.test_case "erdos extremes" `Quick test_erdos_extremes;
          Alcotest.test_case "fork-join shape" `Quick test_fork_join_shape;
          quick prop_out_tree;
          quick prop_pegasus_shape;
          Alcotest.test_case "chain" `Quick test_chain_gen;
          quick prop_volume_in_range;
          Alcotest.test_case "reject bad counts" `Quick
            test_generators_reject_bad_counts;
          Alcotest.test_case "reject bad volumes" `Quick
            test_generators_reject_bad_volumes;
        ] );
      ( "csr",
        [ quick prop_csr_matches_lists; quick prop_csr_entries_exits ] );
      ( "classic",
        [
          Alcotest.test_case "gauss" `Quick test_gauss_structure;
          Alcotest.test_case "fft" `Quick test_fft_structure;
          Alcotest.test_case "fft non-power" `Quick test_fft_rejects_non_power;
          Alcotest.test_case "wavefront" `Quick test_wavefront_structure;
          Alcotest.test_case "diamond" `Quick test_diamond_structure;
          Alcotest.test_case "cholesky" `Quick test_cholesky_structure;
        ] );
      ( "stg",
        [
          Alcotest.test_case "parse" `Quick test_stg_parse;
          Alcotest.test_case "roundtrip" `Quick test_stg_roundtrip;
          Alcotest.test_case "errors" `Quick test_stg_errors;
          Alcotest.test_case "edge volume" `Quick test_stg_edge_volume;
          quick prop_stg_roundtrip_random;
        ] );
      ( "dot",
        [
          Alcotest.test_case "output" `Quick test_dot_output;
          Alcotest.test_case "escaping" `Quick test_dot_escaping;
        ] );
    ]
