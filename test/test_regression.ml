(* Golden-value regression tests.

   Every number here was produced by the current implementation on a
   pinned seed and checked against the validators, the reference oracle
   and the simulators.  They exist to catch *unintentional* behavioural
   drift: if an edit changes any value, either the edit has a bug or the
   change is intentional — in which case the expected values (and any
   archived experiment outputs) must be regenerated together.

   The tiny-chain values are additionally hand-derived in
   test/test_schedule.ml. *)

module Schedule = Ftsched_schedule.Schedule
module Ftsa = Ftsched_core.Ftsa
module Mc_ftsa = Ftsched_core.Mc_ftsa
module Ftbar = Ftsched_baseline.Ftbar
module Heft = Ftsched_baseline.Heft
module Cpop = Ftsched_baseline.Cpop
module Workload = Ftsched_exp.Workload
open Helpers

let golden = Alcotest.(check (float 1e-6))

(* One paper-workload instance, pinned: seed 2008, granularity 1.0,
   index 0 — the first graph of every figure's g=1.0 point. *)
let pinned_instance () =
  Workload.instance Workload.paper ~master_seed:2008 ~granularity:1.0 ~index:0

let test_instance_shape () =
  let inst = pinned_instance () in
  check_int "tasks" 135 (Instance.n_tasks inst);
  check_int "procs" 20 (Instance.n_procs inst);
  check_int "edges" 852 (Ftsched_dag.Dag.n_edges (Instance.dag inst))

let test_ftsa_golden () =
  let inst = pinned_instance () in
  let s = Ftsa.schedule ~seed:2008 inst ~eps:2 in
  golden "M*" 4629.011464 (Schedule.latency_lower_bound s);
  golden "M" 5991.839780 (Schedule.latency_upper_bound s);
  check_int "messages" 6342 (Schedule.inter_processor_messages s)

let test_mc_golden () =
  let inst = pinned_instance () in
  let s = Mc_ftsa.schedule ~seed:2008 inst ~eps:2 in
  golden "M*" 6161.288773 (Schedule.latency_lower_bound s);
  golden "M" 6193.253678 (Schedule.latency_upper_bound s);
  check_int "messages" 2126 (Schedule.inter_processor_messages s)

let test_ftbar_golden () =
  let inst = pinned_instance () in
  let s = Ftbar.schedule ~seed:2008 inst ~npf:2 in
  golden "M*" 5379.374497 (Schedule.latency_lower_bound s);
  golden "M" 8674.520458 (Schedule.latency_upper_bound s)

(* Zero-loss communication faults must reproduce the plain event-driven
   latencies bit-for-bit: [Scenario.lossy ()] (loss 0, no outages) is
   detected as reliable and takes the exact unfaulted emit path, drawing
   nothing from the fault RNG. Exact float equality, no tolerance. *)
let test_zero_loss_bit_for_bit () =
  let inst = pinned_instance () in
  let m = Instance.n_procs inst in
  let faults = Ftsched_sim.Scenario.lossy () in
  List.iter
    (fun (name, s) ->
      List.iter
        (fun (net_name, network) ->
          let fail_times = Array.make m infinity in
          let plain = Ftsched_sim.Event_sim.run ~network s ~fail_times in
          let faulted =
            Ftsched_sim.Event_sim.run ~network ~faults s ~fail_times
          in
          check_bool
            (Printf.sprintf "%s/%s latency bit-for-bit" name net_name)
            true
            (plain.Ftsched_sim.Event_sim.latency
            = faulted.Ftsched_sim.Event_sim.latency);
          check_int
            (Printf.sprintf "%s/%s no retransmissions" name net_name)
            0 faulted.Ftsched_sim.Event_sim.retransmissions;
          check_int
            (Printf.sprintf "%s/%s no losses" name net_name)
            0 faulted.Ftsched_sim.Event_sim.lost_messages)
        [
          ("free", Ftsched_sim.Event_sim.Contention_free);
          ("one-port", Ftsched_sim.Event_sim.Sender_ports 1);
        ])
    [
      ("ftsa", Ftsa.schedule ~seed:2008 inst ~eps:2);
      ("mc-ftsa", Mc_ftsa.schedule ~seed:2008 inst ~eps:2);
    ]

let test_fault_free_golden () =
  let inst = pinned_instance () in
  golden "FTSA ff" 2720.905673
    (Schedule.latency_lower_bound (Ftsa.fault_free inst));
  golden "HEFT" 2741.900591
    (Schedule.latency_lower_bound (Heft.schedule inst));
  golden "CPOP" 2948.755512
    (Schedule.latency_lower_bound (Cpop.schedule inst));
  golden "PEFT" 2957.984335
    (Schedule.latency_lower_bound (Ftsched_baseline.Peft.schedule inst))

(* ------------------------------------------------------------------ *)
(* Bit-for-bit schedule digests.

   MD5 over every replica's (task, index, proc, start, finish,
   pess_start, pess_finish) printed with 17 significant digits — enough
   to round-trip any double, so two schedules share a digest iff they are
   bit-for-bit identical.  The FTSA-family digests were captured from the
   pre-kernel implementations (private engine state, per-scheduler
   earliest-gap copies) and prove the kernel refactor — hoisted eq-(1)
   reduction, shared Proc_state timelines, generic driver — reproduces
   every schedule exactly.  The HEFT/PEFT/CPOP digests are post-kernel:
   their committed replicas now start at the true timeline-slot start
   instead of [finish − duration] (equal up to the last float bits;
   makespans above are unchanged). *)

let schedule_digest s =
  let buf = Buffer.create 4096 in
  let inst = Schedule.instance s in
  for t = 0 to Instance.n_tasks inst - 1 do
    Array.iter
      (fun (r : Schedule.replica) ->
        Buffer.add_string buf
          (Printf.sprintf "%d:%d:%d:%.17g:%.17g:%.17g:%.17g;" r.Schedule.task
             r.Schedule.index r.Schedule.proc r.Schedule.start r.Schedule.finish
             r.Schedule.pess_start r.Schedule.pess_finish))
      (Schedule.replicas s t)
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let check_digest = Alcotest.(check string)

let test_schedule_digests () =
  let inst = pinned_instance () in
  let m = Instance.n_procs inst in
  check_digest "ftsa eps=2" "33a437bb9ecf7a399d487341a3ade07c"
    (schedule_digest (Ftsa.schedule ~seed:2008 inst ~eps:2));
  check_digest "mc-ftsa greedy eps=2" "9a96f90562bf42e6414117f55f65d6ec"
    (schedule_digest (Mc_ftsa.schedule ~seed:2008 inst ~eps:2));
  check_digest "mc-ftsa bottleneck eps=2" "07688f2d5071185f1d7a7d6ffbcaaad8"
    (schedule_digest
       (Mc_ftsa.schedule ~seed:2008 ~strategy:Mc_ftsa.Bottleneck inst ~eps:2));
  check_digest "ftbar npf=2" "5bb8eae8d5a61134ee26cf50d242e3bb"
    (schedule_digest (Ftbar.schedule ~seed:2008 inst ~npf:2));
  check_digest "ca-ftsa eps=2" "216be2f1d23eb167bdcd39ae4dba72cc"
    (schedule_digest (Ftsched_core.Ca_ftsa.schedule ~seed:2008 inst ~eps:2));
  let rates = Array.init m (fun p -> if p mod 2 = 0 then 0.0001 else 0.002) in
  check_digest "r-ftsa eps=2" "4412b2013d9967ab0ace5cd847d83a56"
    (schedule_digest (Ftsched_core.R_ftsa.schedule ~seed:2008 ~rates inst ~eps:2));
  let domains = Array.init m (fun p -> p mod 5) in
  check_digest "ftsa-domains eps=2" "9c1e7e230a95cbd4c84c5c19705787ba"
    (schedule_digest
       (Ftsched_core.Ftsa_domains.schedule ~seed:2008 ~domains inst ~eps:2));
  check_digest "heft" "25c36db939f0fb6db0ce9093c21f55b7"
    (schedule_digest (Heft.schedule inst));
  check_digest "peft" "396bffb9fbbcf8e3d114e0a1c333b9d3"
    (schedule_digest (Ftsched_baseline.Peft.schedule inst));
  check_digest "cpop" "97ed5700d5b26324ba4c0fe8285bb900"
    (schedule_digest (Cpop.schedule inst))

(* The kernel driver versus the naive oracle, with EXACT float equality
   (test_core checks 1e-9 on random instances; here the pinned instance
   gets the stronger bit-for-bit claim). *)
let test_ftsa_equals_reference_exactly () =
  let inst = pinned_instance () in
  for eps = 0 to 2 do
    let s = Ftsa.schedule ~seed:2008 inst ~eps in
    let r = Reference_ftsa.schedule ~seed:2008 inst ~eps in
    for task = 0 to Instance.n_tasks inst - 1 do
      let a = Schedule.replicas s task and b = r.Reference_ftsa.replicas.(task) in
      check_int (Printf.sprintf "eps=%d task=%d replica count" eps task)
        (Array.length b) (Array.length a);
      Array.iteri
        (fun i (x : Schedule.replica) ->
          let y = b.(i) in
          check_bool
            (Printf.sprintf "eps=%d task=%d replica=%d bit-for-bit" eps task i)
            true
            (x.proc = y.Reference_ftsa.proc
            && x.start = y.Reference_ftsa.start
            && x.finish = y.Reference_ftsa.finish
            && x.pess_start = y.Reference_ftsa.pess_start
            && x.pess_finish = y.Reference_ftsa.pess_finish))
        a
    done
  done

let () =
  Alcotest.run "regression"
    [
      ( "golden",
        [
          Alcotest.test_case "pinned instance shape" `Quick test_instance_shape;
          Alcotest.test_case "ftsa" `Quick test_ftsa_golden;
          Alcotest.test_case "mc-ftsa" `Quick test_mc_golden;
          Alcotest.test_case "ftbar" `Quick test_ftbar_golden;
          Alcotest.test_case "fault-free trio" `Quick test_fault_free_golden;
          Alcotest.test_case "zero loss bit-for-bit" `Quick
            test_zero_loss_bit_for_bit;
          Alcotest.test_case "schedule digests" `Quick test_schedule_digests;
          Alcotest.test_case "ftsa equals reference exactly" `Quick
            test_ftsa_equals_reference_exactly;
        ] );
    ]
