(* Golden-value regression tests.

   Every number here was produced by the current implementation on a
   pinned seed and checked against the validators, the reference oracle
   and the simulators.  They exist to catch *unintentional* behavioural
   drift: if an edit changes any value, either the edit has a bug or the
   change is intentional — in which case the expected values (and any
   archived experiment outputs) must be regenerated together.

   The tiny-chain values are additionally hand-derived in
   test/test_schedule.ml. *)

module Schedule = Ftsched_schedule.Schedule
module Ftsa = Ftsched_core.Ftsa
module Mc_ftsa = Ftsched_core.Mc_ftsa
module Ftbar = Ftsched_baseline.Ftbar
module Heft = Ftsched_baseline.Heft
module Cpop = Ftsched_baseline.Cpop
module Workload = Ftsched_exp.Workload
open Helpers

let golden = Alcotest.(check (float 1e-6))

(* One paper-workload instance, pinned: seed 2008, granularity 1.0,
   index 0 — the first graph of every figure's g=1.0 point. *)
let pinned_instance () =
  Workload.instance Workload.paper ~master_seed:2008 ~granularity:1.0 ~index:0

let test_instance_shape () =
  let inst = pinned_instance () in
  check_int "tasks" 135 (Instance.n_tasks inst);
  check_int "procs" 20 (Instance.n_procs inst);
  check_int "edges" 852 (Ftsched_dag.Dag.n_edges (Instance.dag inst))

let test_ftsa_golden () =
  let inst = pinned_instance () in
  let s = Ftsa.schedule ~seed:2008 inst ~eps:2 in
  golden "M*" 4629.011464 (Schedule.latency_lower_bound s);
  golden "M" 5991.839780 (Schedule.latency_upper_bound s);
  check_int "messages" 6342 (Schedule.inter_processor_messages s)

let test_mc_golden () =
  let inst = pinned_instance () in
  let s = Mc_ftsa.schedule ~seed:2008 inst ~eps:2 in
  golden "M*" 6161.288773 (Schedule.latency_lower_bound s);
  golden "M" 6193.253678 (Schedule.latency_upper_bound s);
  check_int "messages" 2126 (Schedule.inter_processor_messages s)

let test_ftbar_golden () =
  let inst = pinned_instance () in
  let s = Ftbar.schedule ~seed:2008 inst ~npf:2 in
  golden "M*" 5379.374497 (Schedule.latency_lower_bound s);
  golden "M" 8674.520458 (Schedule.latency_upper_bound s)

(* Zero-loss communication faults must reproduce the plain event-driven
   latencies bit-for-bit: [Scenario.lossy ()] (loss 0, no outages) is
   detected as reliable and takes the exact unfaulted emit path, drawing
   nothing from the fault RNG. Exact float equality, no tolerance. *)
let test_zero_loss_bit_for_bit () =
  let inst = pinned_instance () in
  let m = Instance.n_procs inst in
  let faults = Ftsched_sim.Scenario.lossy () in
  List.iter
    (fun (name, s) ->
      List.iter
        (fun (net_name, network) ->
          let fail_times = Array.make m infinity in
          let plain = Ftsched_sim.Event_sim.run ~network s ~fail_times in
          let faulted =
            Ftsched_sim.Event_sim.run ~network ~faults s ~fail_times
          in
          check_bool
            (Printf.sprintf "%s/%s latency bit-for-bit" name net_name)
            true
            (plain.Ftsched_sim.Event_sim.latency
            = faulted.Ftsched_sim.Event_sim.latency);
          check_int
            (Printf.sprintf "%s/%s no retransmissions" name net_name)
            0 faulted.Ftsched_sim.Event_sim.retransmissions;
          check_int
            (Printf.sprintf "%s/%s no losses" name net_name)
            0 faulted.Ftsched_sim.Event_sim.lost_messages)
        [
          ("free", Ftsched_sim.Event_sim.Contention_free);
          ("one-port", Ftsched_sim.Event_sim.Sender_ports 1);
        ])
    [
      ("ftsa", Ftsa.schedule ~seed:2008 inst ~eps:2);
      ("mc-ftsa", Mc_ftsa.schedule ~seed:2008 inst ~eps:2);
    ]

let test_fault_free_golden () =
  let inst = pinned_instance () in
  golden "FTSA ff" 2720.905673
    (Schedule.latency_lower_bound (Ftsa.fault_free inst));
  golden "HEFT" 2741.900591
    (Schedule.latency_lower_bound (Heft.schedule inst));
  golden "CPOP" 2948.755512
    (Schedule.latency_lower_bound (Cpop.schedule inst))

let () =
  Alcotest.run "regression"
    [
      ( "golden",
        [
          Alcotest.test_case "pinned instance shape" `Quick test_instance_shape;
          Alcotest.test_case "ftsa" `Quick test_ftsa_golden;
          Alcotest.test_case "mc-ftsa" `Quick test_mc_golden;
          Alcotest.test_case "ftbar" `Quick test_ftbar_golden;
          Alcotest.test_case "fault-free trio" `Quick test_fault_free_golden;
          Alcotest.test_case "zero loss bit-for-bit" `Quick
            test_zero_loss_bit_for_bit;
        ] );
    ]
