(* Tests for Ftsched_tournament: the mutation kernel's closure property
   (every operator maps valid genomes to valid genomes), NaN-safe
   ranking, the monotone incumbent trace, -j determinism of campaign
   digests, and the save-then-replay witness path — including fuzz
   ingestion of tournament witnesses. *)

module Mutate = Ftsched_tournament.Mutate
module Tournament = Ftsched_tournament.Tournament
module Fuzz = Ftsched_fuzz.Fuzz
module Rng = Ftsched_util.Rng
module Instance = Ftsched_model.Instance
open Helpers

let sched name = List.find (fun s -> s.Fuzz.name = name) Fuzz.schedulers
let ftsa = sched "ftsa"
let mc_greedy = sched "mc-greedy"

(* ------------------------------------------------------------------ *)
(* Mutation closure                                                    *)

(* Every operator, applied anywhere in a short random mutation walk,
   must produce a genome that is again valid: acyclic (Dag.Builder
   enforces it), weakly connected when the seed was, finite positive
   costs, eps <= m-1, under the serializer caps, and bit-identical
   through a serialize round trip.  One QCheck case = one seed genome
   plus one attempt of every operator at each step of the walk. *)
let prop_mutation_closure =
  QCheck.Test.make ~name:"mutation ops are closed over valid genomes"
    ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let g0 = Mutate.random rng in
      (match Mutate.valid g0 with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "seed genome invalid: %s" msg);
      let cur = ref g0 in
      for _step = 0 to 3 do
        List.iter
          (fun op ->
            match Mutate.apply rng op !cur with
            | None -> ()
            | Some g' -> (
                match Mutate.valid g' with
                | Ok () -> cur := g'
                | Error msg ->
                    QCheck.Test.fail_reportf "%s broke validity: %s"
                      (Mutate.op_name op) msg))
          Mutate.all_ops
      done;
      true)

let test_mutate_makes_progress () =
  (* [mutate] should essentially always find an applicable operator. *)
  let rng = Rng.create ~seed:42 in
  let g = Mutate.random rng in
  let applied = ref 0 in
  let cur = ref g in
  for _ = 1 to 50 do
    match Mutate.mutate rng !cur with
    | Some g' ->
        incr applied;
        cur := g'
    | None -> ()
  done;
  Alcotest.(check bool) "mutations applied" true (!applied >= 45)

(* ------------------------------------------------------------------ *)
(* NaN-safe ranking                                                    *)

let test_ratio_nan_safety () =
  let some_inf = Tournament.ratio ~a:Tournament.Defeated ~b:(Tournament.Makespan 2.) in
  Alcotest.(check bool) "a defeated -> +inf" true (some_inf = Some infinity);
  Alcotest.(check bool) "b defeated -> rejected" true
    (Tournament.ratio ~a:(Tournament.Makespan 2.) ~b:Tournament.Defeated = None);
  Alcotest.(check bool) "both defeated -> rejected" true
    (Tournament.ratio ~a:Tournament.Defeated ~b:Tournament.Defeated = None);
  (match Tournament.ratio ~a:(Tournament.Makespan 6.) ~b:(Tournament.Makespan 2.) with
  | Some r -> check_float "finite ratio" 3. r
  | None -> Alcotest.fail "finite pair must score");
  (* no combination may ever surface NaN *)
  List.iter
    (fun (a, b) ->
      match Tournament.ratio ~a ~b with
      | Some r -> Alcotest.(check bool) "never NaN" false (Float.is_nan r)
      | None -> ())
    [
      (Tournament.Defeated, Tournament.Defeated);
      (Tournament.Defeated, Tournament.Makespan 1.);
      (Tournament.Makespan 1., Tournament.Defeated);
      (Tournament.Makespan 0., Tournament.Makespan 0.);
      (Tournament.Makespan 1., Tournament.Makespan 1.);
    ]

let test_metric_names () =
  List.iter
    (fun m ->
      match Tournament.metric_of_name (Tournament.metric_name m) with
      | Some m' -> Alcotest.(check bool) "metric name round-trip" true (m = m')
      | None -> Alcotest.fail "metric name did not round-trip")
    [ Tournament.Guaranteed; Tournament.Crash_worst ];
  Alcotest.(check bool) "unknown rejected" true
    (Tournament.metric_of_name "bogus" = None)

(* ------------------------------------------------------------------ *)
(* Annealer                                                            *)

(* The incumbent trace is best-so-far after each accepted step: it must
   be monotone non-decreasing under Float.compare even though the
   annealer itself accepts downhill moves. *)
let prop_incumbent_monotone =
  QCheck.Test.make ~name:"incumbent ratio monotone non-decreasing" ~count:15
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let r = Tournament.search ~iters:40 ~seed ftsa mc_greedy in
      let rec mono = function
        | a :: (b :: _ as tl) ->
            if Float.compare a b > 0 then
              QCheck.Test.fail_reportf "trace decreased: %h -> %h" a b
            else mono tl
        | _ -> true
      in
      mono r.Tournament.best_trace)

let test_search_beats_nothing_silently () =
  (* A short search on the default metric must produce an incumbent:
     every policy schedules every valid instance, so only round-trip
     failures could starve it — and those are counted. *)
  let r = Tournament.search ~iters:30 ~seed:11 ftsa mc_greedy in
  Alcotest.(check bool) "found incumbent" true (r.Tournament.best <> None);
  Alcotest.(check bool) "ratio is finite or +inf" true
    (not (Float.is_nan r.Tournament.best_ratio));
  check_int "no round-trip failures" 0 r.Tournament.round_trip_failures

let test_campaign_digest_jobs_invariant () =
  let campaign jobs =
    Tournament.campaign ~jobs ~pairs:4 ~iters:25 ~seed:3 ()
  in
  let d1 = Tournament.report_digest (campaign 1) in
  let d4 = Tournament.report_digest (campaign 4) in
  Alcotest.(check string) "-j1 = -j4 digest" d1 d4

let test_baseline_stream_independent () =
  (* Scoring a baseline must not perturb the annealing stream: same
     seed, with and without baseline, same incumbent. *)
  let a = Tournament.search ~iters:25 ~seed:5 ftsa mc_greedy in
  let b = Tournament.search ~iters:25 ~seed:5 ~baseline:20 ftsa mc_greedy in
  Alcotest.(check bool) "same incumbent ratio" true
    (Float.compare a.Tournament.best_ratio b.Tournament.best_ratio = 0);
  Alcotest.(check bool) "baseline present" true
    (b.Tournament.baseline_ratio <> None)

(* ------------------------------------------------------------------ *)
(* Witnesses                                                           *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftsched-test-tournament-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter
      (fun e -> Sys.remove (Filename.concat dir e))
      (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_witnesses_replay_bit_for_bit () =
  with_temp_dir (fun dir ->
      let report = Tournament.campaign ~jobs:2 ~pairs:3 ~iters:30 ~seed:7 () in
      let witnesses = Tournament.save_witnesses ~dir report in
      Alcotest.(check bool) "witnesses saved" true (witnesses <> []);
      List.iter
        (fun (p, path) ->
          match Tournament.replay path with
          | Ok r ->
              Alcotest.(check bool)
                (path ^ " ratio reproduced") true
                (Float.compare r p.Tournament.best_ratio = 0)
          | Error msg -> Alcotest.failf "%s: %s" path msg)
        witnesses)

let test_fuzz_ingests_tournament_witnesses () =
  with_temp_dir (fun dir ->
      let report = Tournament.campaign ~jobs:2 ~pairs:2 ~iters:25 ~seed:9 () in
      let witnesses = Tournament.save_witnesses ~dir report in
      Alcotest.(check bool) "witnesses saved" true (witnesses <> []);
      (* fuzz --replay dispatches on the magic and runs the full oracle
         battery of both policies; clean schedules replay clean *)
      List.iter
        (fun (_, path) ->
          match Fuzz.replay path with
          | Ok (_, []) -> ()
          | Ok (name, vs) ->
              Alcotest.failf "%s: %s fired %d oracle(s)" path name
                (List.length vs)
          | Error msg -> Alcotest.failf "%s: %s" path msg)
        witnesses;
      (* and replay_corpus picks them up next to ordinary fuzz cases *)
      let results = Fuzz.replay_corpus dir in
      check_int "corpus size" (List.length witnesses) (List.length results))

let test_tournament_witness_io_roundtrip () =
  with_temp_dir (fun dir ->
      let rng = Rng.create ~seed:13 in
      let g = Mutate.random rng in
      let w =
        {
          Fuzz.policy_a = "ftsa";
          policy_b = "mc-greedy";
          metric = "guaranteed";
          ratio = 0x1.921fb54442d18p+1;
          case =
            {
              Fuzz.instance = g.Mutate.instance;
              eps = g.Mutate.eps;
              sched_seed = 99;
            };
        }
      in
      let path = Filename.concat dir "io-roundtrip.case" in
      Fuzz.write_tournament_case ~path w;
      let w' = Fuzz.read_tournament_case ~path in
      Alcotest.(check string) "policy a" w.Fuzz.policy_a w'.Fuzz.policy_a;
      Alcotest.(check string) "policy b" w.Fuzz.policy_b w'.Fuzz.policy_b;
      Alcotest.(check string) "metric" w.Fuzz.metric w'.Fuzz.metric;
      Alcotest.(check bool) "ratio bit-exact" true
        (Float.compare w.Fuzz.ratio w'.Fuzz.ratio = 0);
      check_int "eps" w.Fuzz.case.Fuzz.eps w'.Fuzz.case.Fuzz.eps;
      check_int "sched seed" w.Fuzz.case.Fuzz.sched_seed
        w'.Fuzz.case.Fuzz.sched_seed;
      Alcotest.(check bool) "instance bit-identical" true
        (Ftsched_schedule.Serialize.instance_to_string w.Fuzz.case.Fuzz.instance
        = Ftsched_schedule.Serialize.instance_to_string
            w'.Fuzz.case.Fuzz.instance))

let () =
  Alcotest.run "tournament"
    [
      ( "mutate",
        [
          quick prop_mutation_closure;
          Alcotest.test_case "mutate applies" `Quick test_mutate_makes_progress;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "ratio NaN-safe" `Quick test_ratio_nan_safety;
          Alcotest.test_case "metric names" `Quick test_metric_names;
        ] );
      ( "annealer",
        [
          quick prop_incumbent_monotone;
          Alcotest.test_case "incumbent found" `Quick
            test_search_beats_nothing_silently;
          Alcotest.test_case "digest jobs-invariant" `Quick
            test_campaign_digest_jobs_invariant;
          Alcotest.test_case "baseline independent" `Quick
            test_baseline_stream_independent;
        ] );
      ( "witness",
        [
          Alcotest.test_case "save-then-replay bit-for-bit" `Quick
            test_witnesses_replay_bit_for_bit;
          Alcotest.test_case "fuzz ingestion" `Quick
            test_fuzz_ingests_tournament_witnesses;
          Alcotest.test_case "io round-trip" `Quick
            test_tournament_witness_io_roundtrip;
        ] );
    ]
