(* Tests for Ftsched_util: Rng, Stats, Float_utils, Table. *)

module Rng = Ftsched_util.Rng
module Stats = Ftsched_util.Stats
module F = Ftsched_util.Float_utils
module Table = Ftsched_util.Table
open Helpers

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create ~seed:5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  (* advancing the copy does not affect the original *)
  ignore (Rng.bits64 b);
  let a2 = Rng.bits64 a and b2 = Rng.bits64 b in
  check_bool "streams decoupled after copy"
    true
    (a2 <> b2 (* b is one draw ahead *))

let test_rng_split_independent () =
  let a = Rng.create ~seed:9 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "split stream differs" true (!same < 4)

let prop_int_in_range =
  QCheck.Test.make ~name:"Rng.int in [0,n)" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let g = Rng.create ~seed in
      let x = Rng.int g n in
      x >= 0 && x < n)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_bound 100))
    (fun (seed, lo, span) ->
      let hi = lo + span in
      let g = Rng.create ~seed in
      let x = Rng.int_in g lo hi in
      x >= lo && x <= hi)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float_in bounds" ~count:500
    QCheck.(pair small_int (pair (float_bound_exclusive 100.) (float_bound_exclusive 100.)))
    (fun (seed, (a, b)) ->
      let lo = Float.min a b and hi = Float.max a b in
      QCheck.assume (lo < hi);
      let g = Rng.create ~seed in
      let x = Rng.float_in g lo hi in
      x >= lo && x < hi)

let test_rng_uniformity () =
  (* Coarse chi-square-free sanity check on bucket counts. *)
  let g = Rng.create ~seed:77 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Rng.int g 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 1700 || c > 2300 then
        Alcotest.failf "bucket %d has suspicious count %d" i c)
    buckets

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"Rng.shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let g = Rng.create ~seed in
      let a = Array.of_list l in
      Rng.shuffle g a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_sample_distinct =
  QCheck.Test.make ~name:"Rng.sample_distinct distinct and in range" ~count:300
    QCheck.(triple small_int (int_bound 30) (int_bound 30))
    (fun (seed, a, b) ->
      let k = min a b and n = max a b in
      QCheck.assume (n > 0);
      let g = Rng.create ~seed in
      let s = Rng.sample_distinct g ~k ~n in
      Array.length s = k
      && Array.for_all (fun x -> x >= 0 && x < n) s
      && List.length (List.sort_uniq compare (Array.to_list s)) = k)

let test_sample_distinct_full () =
  let g = Rng.create ~seed:3 in
  let s = Rng.sample_distinct g ~k:8 ~n:8 in
  Alcotest.(check (list int)) "permutation of 0..7"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare (Array.to_list s))

let test_bernoulli_extremes () =
  let g = Rng.create ~seed:4 in
  for _ = 1 to 100 do
    check_bool "p=0 never true" false (Rng.bernoulli g 0.)
  done;
  for _ = 1 to 100 do
    check_bool "p=1 always true" true (Rng.bernoulli g 1.)
  done

let test_exponential_mean () =
  let g = Rng.create ~seed:8 in
  let n = 50_000 in
  let total = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential g ~mean:2.5 in
    check_bool "exponential positive" true (x >= 0.);
    total := !total +. x
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean within 5%" true (Float.abs (mean -. 2.5) < 0.125)

let test_pick () =
  let g = Rng.create ~seed:12 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    check_bool "pick member" true (Array.mem (Rng.pick g a) a)
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_summarize_known () =
  let s = Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_int "n" 8 s.Stats.n;
  check_float "mean" 5.0 s.Stats.mean;
  check_float_loose "stddev" 2.13809 s.Stats.stddev;
  check_float "min" 2. s.Stats.min;
  check_float "max" 9. s.Stats.max;
  check_float "median" 4.5 s.Stats.median

let test_summarize_singleton () =
  let s = Stats.summarize [| 42. |] in
  check_float "mean" 42. s.Stats.mean;
  check_float "stddev" 0. s.Stats.stddev;
  check_float "stderr" 0. s.Stats.stderr;
  check_float "median" 42. s.Stats.median

let test_stddev_constant () =
  check_float "constant stddev" 0. (Stats.stddev [| 3.; 3.; 3.; 3. |])

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p100" 4. (Stats.percentile xs 100.);
  check_float "p50 interpolated" 2.5 (Stats.percentile xs 50.);
  check_float "p25" 1.75 (Stats.percentile xs 25.)

let test_median_odd () =
  check_float "odd median" 3. (Stats.median [| 5.; 1.; 3. |])

let test_geometric_mean () =
  check_float "geomean" 4. (Stats.geometric_mean [| 2.; 8. |]);
  check_float "geomean of equal" 5. (Stats.geometric_mean [| 5.; 5.; 5. |])

let test_ci95 () =
  let s = Stats.summarize (Array.make 100 1.) in
  check_float "ci of constants" 0. (Stats.ci95_halfwidth s)

(* regression: NaN samples used to sort below every real value under
   polymorphic compare and silently shift every rank *)
let test_stats_reject_nan () =
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "percentile rejects NaN" true
    (rejects (fun () -> Stats.percentile [| 1.; Float.nan; 3. |] 50.));
  check_bool "median rejects NaN" true
    (rejects (fun () -> Stats.median [| Float.nan |]));
  check_bool "summarize rejects NaN" true
    (rejects (fun () -> Stats.summarize [| 2.; Float.nan |]))

(* regression: Float.compare keeps order statistics total and exact on
   the non-NaN edge cases (signed zero, infinities) *)
let test_stats_float_compare_order () =
  check_float "p0 with -0." (-1.) (Stats.percentile [| 0.; -1.; -0. |] 0.);
  check_float "median with infinities" 1.
    (Stats.percentile [| Float.infinity; 1.; Float.neg_infinity |] 50.)

let prop_mean_bounds =
  QCheck.Test.make ~name:"Stats.mean between min and max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun l ->
      let xs = Array.of_list l in
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Float_utils                                                         *)

let test_approx_equal () =
  check_bool "exact" true (F.approx_equal 1.0 1.0);
  check_bool "close" true (F.approx_equal 1.0 (1.0 +. 1e-12));
  check_bool "far" false (F.approx_equal 1.0 1.1);
  check_bool "relative scale" true
    (F.approx_equal 1e12 (1e12 +. 1.));
  check_bool "custom eps" true (F.approx_equal ~eps:0.2 1.0 1.1)

let test_approx_le () =
  check_bool "lt" true (F.approx_le 1.0 2.0);
  check_bool "eq-ish" true (F.approx_le (1.0 +. 1e-12) 1.0);
  check_bool "gt" false (F.approx_le 2.0 1.0)

let test_clamp () =
  check_float "below" 0. (F.clamp ~lo:0. ~hi:1. (-5.));
  check_float "above" 1. (F.clamp ~lo:0. ~hi:1. 5.);
  check_float "inside" 0.5 (F.clamp ~lo:0. ~hi:1. 0.5)

let test_array_folds () =
  check_float "max" 9. (F.max_array [| 1.; 9.; 3. |]);
  check_float "min" 1. (F.min_array [| 1.; 9.; 3. |]);
  check_float "sum" 13. (F.sum [| 1.; 9.; 3. |])

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_arity () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_rows_in_order () =
  let t = Table.create ~columns:[ "x" ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  check_int "count" 2 (Table.row_count t);
  let s = Table.to_csv t in
  Alcotest.(check string) "csv order" "x\nfirst\nsecond\n" s

let test_table_csv_escaping () =
  let t = Table.create ~columns:[ "c" ] in
  Table.add_row t [ "a,b" ];
  Table.add_row t [ "say \"hi\"" ];
  Table.add_row t [ "line\nbreak" ];
  let s = Table.to_csv t in
  check_bool "comma quoted" true (contains s "\"a,b\"");
  check_bool "quote doubled" true (contains s "\"say \"\"hi\"\"\"");
  check_bool "newline quoted" true (contains s "\"line\nbreak\"")

let test_table_alignment () =
  let t = Table.create ~columns:[ "name"; "v" ] in
  Table.add_row t [ "longer-name"; "1" ];
  let s = Table.to_string t in
  (* all lines have equal width *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  match widths with
  | w :: rest -> List.iter (fun w' -> check_int "aligned" w w') rest
  | [] -> Alcotest.fail "empty render"

let test_table_float_row () =
  let t = Table.create ~columns:[ "label"; "a"; "b" ] in
  let t = Table.add_float_row t "r" [ 1.5; 2.25 ] in
  let csv = Table.to_csv t in
  check_bool "default fmt" true (contains csv "1.500")

let test_table_save_csv () =
  let t = Table.create ~columns:[ "a" ] in
  Table.add_row t [ "1" ];
  let path = Filename.temp_file "ftsched" ".csv" in
  Table.save_csv t ~path;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" (Table.to_csv t) content

(* ------------------------------------------------------------------ *)
(* Gnuplot                                                             *)

module Gnuplot = Ftsched_util.Gnuplot

let sample_table () =
  let t = Table.create ~columns:[ "granularity"; "FTSA"; "FTBAR" ] in
  Table.add_row t [ "0.2"; "10.5"; "12.0" ];
  Table.add_row t [ "0.4"; "20.0"; "25.5" ];
  t

let test_gnuplot_data () =
  let d = Gnuplot.data_of_table (sample_table ()) in
  check_bool "header comment" true (contains d "# granularity FTSA FTBAR");
  check_bool "row" true (contains d "0.2 10.5 12.0")

let test_gnuplot_script () =
  let s =
    Gnuplot.script_of_table ~title:"Fig" ~xlabel:"g" ~ylabel:"latency"
      ~dat_file:"x.dat" ~out_file:"x.png" (sample_table ())
  in
  check_bool "terminal" true (contains s "set terminal pngcairo");
  check_bool "two series" true
    (contains s "using 1:2 with linespoints title 'FTSA'"
    && contains s "using 1:3 with linespoints title 'FTBAR'");
  check_bool "labels" true (contains s "set xlabel 'g'")

let test_gnuplot_save () =
  let base = Filename.temp_file "ftsched" "" in
  Gnuplot.save (sample_table ()) ~basename:base;
  check_bool "dat exists" true (Sys.file_exists (base ^ ".dat"));
  check_bool "gp exists" true (Sys.file_exists (base ^ ".gp"));
  Sys.remove (base ^ ".dat");
  Sys.remove (base ^ ".gp");
  Sys.remove base

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "sample_distinct full" `Quick test_sample_distinct_full;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "pick membership" `Quick test_pick;
          quick prop_int_in_range;
          quick prop_int_in_bounds;
          quick prop_float_in_bounds;
          quick prop_shuffle_permutation;
          quick prop_sample_distinct;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summarize known" `Quick test_summarize_known;
          Alcotest.test_case "summarize singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "stddev constant" `Quick test_stddev_constant;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "ci95 of constants" `Quick test_ci95;
          Alcotest.test_case "reject NaN" `Quick test_stats_reject_nan;
          Alcotest.test_case "Float.compare order" `Quick
            test_stats_float_compare_order;
          quick prop_mean_bounds;
        ] );
      ( "float-utils",
        [
          Alcotest.test_case "approx_equal" `Quick test_approx_equal;
          Alcotest.test_case "approx_le" `Quick test_approx_le;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "array folds" `Quick test_array_folds;
        ] );
      ( "table",
        [
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "row order" `Quick test_table_rows_in_order;
          Alcotest.test_case "csv escaping" `Quick test_table_csv_escaping;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "float row" `Quick test_table_float_row;
          Alcotest.test_case "save csv" `Quick test_table_save_csv;
        ] );
      ( "gnuplot",
        [
          Alcotest.test_case "data block" `Quick test_gnuplot_data;
          Alcotest.test_case "script" `Quick test_gnuplot_script;
          Alcotest.test_case "save" `Quick test_gnuplot_save;
        ] );
    ]
