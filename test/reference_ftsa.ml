(* A deliberately naive re-implementation of FTSA used as a test oracle.

   Same algorithm as Ftsched_core.Engine in all-to-all mode, written with
   none of its machinery: plain lists instead of the AVL priority tree,
   quadratic scans instead of incremental updates, and fresh recomputation
   of every quantity at every step.  Slow and obvious — if the optimized
   engine and this one ever disagree on a schedule, one of them is wrong.

   Tie-breaking must match the engine exactly: the engine assigns each
   freed task a random tie key drawn in the order tasks become free, and
   pops the maximum (priority, tie, task).  We reproduce that order:
   entry tasks are pushed first (in increasing id), then successors as
   they free up. *)

module Dag = Ftsched_dag.Dag
module Platform = Ftsched_platform.Platform
module Instance = Ftsched_model.Instance
module Levels = Ftsched_model.Levels
module Rng = Ftsched_util.Rng

type replica = {
  proc : int;
  start : float;
  finish : float;
  pess_start : float;
  pess_finish : float;
}

type result = { replicas : replica array array }

let schedule ~seed inst ~eps =
  let rng = Rng.create ~seed in
  let g = Instance.dag inst in
  let pl = Instance.platform inst in
  let v = Dag.n_tasks g and m = Instance.n_procs inst in
  let bl = Levels.bottom_levels inst in
  let placed : replica array option array = Array.make v None in
  let free = ref [] in
  (* (priority, tie, task) list; we scan for the max every time *)
  let push t =
    let tl =
      List.fold_left
        (fun acc (t', vol) ->
          let rs = match placed.(t') with Some r -> r | None -> assert false in
          let earliest =
            Array.fold_left
              (fun best c ->
                Float.min best
                  (c.finish +. (vol *. Platform.max_delay_from pl c.proc)))
              infinity rs
          in
          Float.max acc earliest)
        0. (Dag.preds g t)
    in
    free := (tl +. bl.(t), Rng.float_in rng 0. 1., t) :: !free
  in
  List.iter push (Dag.entries g);
  let remaining = Array.init v (fun t -> Dag.in_degree g t) in
  let ready_opt = Array.make m 0. and ready_pess = Array.make m 0. in
  for _ = 1 to v do
    let best =
      List.fold_left
        (fun acc x -> match acc with None -> Some x | Some b -> if x > b then Some x else acc)
        None !free
    in
    let _, _, t = Option.get best in
    free := List.filter (fun (_, _, x) -> x <> t) !free;
    (* finish estimates on every processor, straight from eqs (1)/(3) *)
    let estimates =
      List.init m (fun p ->
          let in_opt = ref 0. and in_pess = ref 0. in
          List.iter
            (fun (t', vol) ->
              let rs = Option.get placed.(t') in
              let e_opt =
                Array.fold_left
                  (fun b c ->
                    Float.min b (c.finish +. (vol *. Platform.delay pl c.proc p)))
                  infinity rs
              in
              let e_pess =
                Array.fold_left
                  (fun b c ->
                    Float.max b
                      (c.pess_finish +. (vol *. Platform.delay pl c.proc p)))
                  0. rs
              in
              if e_opt > !in_opt then in_opt := e_opt;
              if e_pess > !in_pess then in_pess := e_pess)
            (Dag.preds g t);
          let e = Instance.exec inst t p in
          ( p,
            e +. Float.max !in_opt ready_opt.(p),
            e +. Float.max !in_pess ready_pess.(p) ))
    in
    let sorted =
      List.sort
        (fun (pa, fa, _) (pb, fb, _) ->
          match compare fa fb with 0 -> compare pa pb | c -> c)
        estimates
    in
    let chosen = List.filteri (fun i _ -> i <= eps) sorted in
    let reps =
      Array.of_list
        (List.map
           (fun (p, f_opt, f_pess) ->
             let e = Instance.exec inst t p in
             {
               proc = p;
               start = f_opt -. e;
               finish = f_opt;
               pess_start = f_pess -. e;
               pess_finish = f_pess;
             })
           chosen)
    in
    placed.(t) <- Some reps;
    Array.iter
      (fun c ->
        if c.finish > ready_opt.(c.proc) then ready_opt.(c.proc) <- c.finish;
        if c.pess_finish > ready_pess.(c.proc) then
          ready_pess.(c.proc) <- c.pess_finish)
      reps;
    List.iter
      (fun (t', _) ->
        remaining.(t') <- remaining.(t') - 1;
        if remaining.(t') = 0 then push t')
      (Dag.succs g t)
  done;
  { replicas = Array.map Option.get placed }
