(* Tests for Ftsched_reliability. *)

module R = Ftsched_reliability.Reliability
module Ftsa = Ftsched_core.Ftsa
module Mc_ftsa = Ftsched_core.Mc_ftsa
module Schedule = Ftsched_schedule.Schedule
open Helpers

let small_schedule ?(eps = 1) ?(seed = 3) () =
  let inst = random_instance ~n_tasks:25 ~m:5 ~seed () in
  Ftsa.schedule ~seed inst ~eps

let test_binomial_extremes () =
  let s = small_schedule () in
  check_float "p=0" 1. (R.binomial_bound s ~p_fail:0.);
  check_float "p=1" 0. (R.binomial_bound s ~p_fail:1.)

let test_binomial_known_value () =
  (* m=5, eps=1, p=0.1: C(5,0)·0.9^5 + C(5,1)·0.1·0.9^4 *)
  let s = small_schedule ~eps:1 () in
  let expected = (0.9 ** 5.) +. (5. *. 0.1 *. (0.9 ** 4.)) in
  check_float_loose "binomial" expected (R.binomial_bound s ~p_fail:0.1)

let test_binomial_monotone_in_eps () =
  let inst = random_instance ~n_tasks:25 ~m:5 ~seed:4 () in
  let r eps = R.binomial_bound (Ftsa.schedule inst ~eps) ~p_fail:0.2 in
  check_bool "more replicas, more reliability" true
    (r 0 < r 1 && r 1 < r 2 && r 2 < r 3)

let test_exact_at_least_bound () =
  (* the exact reliability also counts lucky survivals beyond eps *)
  let s = small_schedule ~eps:1 () in
  let exact = R.exact s R.Strict ~p_fail:0.15 in
  let bound = R.binomial_bound s ~p_fail:0.15 in
  check_bool "exact >= bound for all-to-all" true (exact >= bound -. 1e-9)

let test_exact_extremes () =
  let s = small_schedule () in
  check_float "p=0 certain" 1. (R.exact s R.Strict ~p_fail:0.);
  check_float "p=1 hopeless" 0. (R.exact s R.Strict ~p_fail:1.)

let test_exact_rejects_big_platform () =
  let inst = random_instance ~n_tasks:30 ~m:17 ~seed:5 () in
  let s = Ftsa.schedule inst ~eps:1 in
  Alcotest.check_raises "m > 16"
    (Invalid_argument "Reliability.exact: platform too large (m > 16)")
    (fun () -> ignore (R.exact s R.Strict ~p_fail:0.1))

let test_monte_carlo_converges_to_exact () =
  let s = small_schedule ~eps:1 () in
  let exact = R.exact s R.Strict ~p_fail:0.2 in
  let rng = Rng.create ~seed:9 in
  let est = R.monte_carlo rng s R.Strict ~p_fail:0.2 ~trials:20_000 in
  check_bool "within 4 sigma" true
    (Float.abs (est.R.mean -. exact) <= Float.max (4. *. est.R.stderr) 0.02)

let test_strict_vs_reroute_policies () =
  (* for an all-to-all plan the two policies coincide exactly *)
  let s = small_schedule ~eps:2 () in
  check_float "all-to-all equal"
    (R.exact s R.Strict ~p_fail:0.25)
    (R.exact s R.Reroute ~p_fail:0.25);
  (* for MC-FTSA, rerouting can only help *)
  let inst = random_instance ~n_tasks:30 ~m:6 ~seed:6 () in
  let mc = Mc_ftsa.schedule inst ~eps:2 in
  check_bool "reroute >= strict" true
    (R.exact mc R.Reroute ~p_fail:0.2 >= R.exact mc R.Strict ~p_fail:0.2 -. 1e-9)

let test_mc_strict_reliability_collapse () =
  (* the headline finding: strict MC-FTSA reliability is essentially the
     probability that no processor fails at all *)
  let inst = random_instance ~n_tasks:40 ~m:6 ~seed:7 () in
  let mc = Mc_ftsa.schedule inst ~eps:2 in
  let p_fail = 0.2 in
  let none_fail = (1. -. p_fail) ** 6. in
  let strict = R.exact mc R.Strict ~p_fail in
  check_bool "close to the no-failure mass" true
    (strict < none_fail +. 0.15);
  let ftsa = Ftsa.schedule inst ~eps:2 in
  check_bool "far below FTSA" true
    (strict < R.exact ftsa R.Strict ~p_fail -. 0.2)

let test_survives_reroute_semantics () =
  let inst = random_instance ~n_tasks:25 ~m:5 ~seed:8 () in
  let mc = Mc_ftsa.schedule inst ~eps:1 in
  (* reroute survival = every task keeps a live replica; killing one
     processor can never defeat an eps=1 schedule *)
  for p = 0 to 4 do
    check_bool "single failure survivable" true
      (R.survives mc R.Reroute ~failed:[| p |])
  done

let test_mission_no_failures () =
  let s = small_schedule ~eps:1 () in
  let rng = Rng.create ~seed:10 in
  let est, lat = R.mission rng s ~rate:0. ~trials:50 () in
  check_float "always succeeds" 1. est.R.mean;
  match lat with
  | Some l -> check_float "latency = M*" (Schedule.latency_lower_bound s) l
  | None -> Alcotest.fail "latencies must exist"

let test_mission_high_rate_fails () =
  let s = small_schedule ~eps:1 () in
  let rng = Rng.create ~seed:11 in
  (* mean time to failure vastly below the schedule length *)
  let rate = 1000. /. Schedule.latency_lower_bound s in
  let est, _ = R.mission rng s ~rate ~trials:100 () in
  check_bool "mostly fails" true (est.R.mean < 0.2)

let test_mission_monotone_in_rate () =
  let s = small_schedule ~eps:2 () in
  let run rate =
    let rng = Rng.create ~seed:12 in
    (fst (R.mission rng s ~rate ~trials:400 ())).R.mean
  in
  let lb = Schedule.latency_lower_bound s in
  let low = run (0.01 /. lb) and high = run (10. /. lb) in
  check_bool "higher rate, lower reliability" true (high <= low)

let test_estimate_stderr () =
  let s = small_schedule () in
  let rng = Rng.create ~seed:13 in
  let est = R.monte_carlo rng s R.Strict ~p_fail:0.3 ~trials:1000 in
  check_int "trials recorded" 1000 est.R.trials;
  check_bool "stderr sane" true (est.R.stderr >= 0. && est.R.stderr < 0.05)

let () =
  Alcotest.run "reliability"
    [
      ( "binomial",
        [
          Alcotest.test_case "extremes" `Quick test_binomial_extremes;
          Alcotest.test_case "known value" `Quick test_binomial_known_value;
          Alcotest.test_case "monotone in eps" `Quick test_binomial_monotone_in_eps;
        ] );
      ( "exact",
        [
          Alcotest.test_case "at least the bound" `Quick test_exact_at_least_bound;
          Alcotest.test_case "extremes" `Quick test_exact_extremes;
          Alcotest.test_case "rejects big platforms" `Quick
            test_exact_rejects_big_platform;
          Alcotest.test_case "policies" `Quick test_strict_vs_reroute_policies;
          Alcotest.test_case "MC strict collapse (paper finding)" `Quick
            test_mc_strict_reliability_collapse;
          Alcotest.test_case "reroute survival semantics" `Quick
            test_survives_reroute_semantics;
        ] );
      ( "monte-carlo",
        [
          Alcotest.test_case "converges to exact" `Slow
            test_monte_carlo_converges_to_exact;
          Alcotest.test_case "stderr" `Quick test_estimate_stderr;
        ] );
      ( "mission",
        [
          Alcotest.test_case "no failures" `Quick test_mission_no_failures;
          Alcotest.test_case "high rate fails" `Quick test_mission_high_rate_fails;
          Alcotest.test_case "monotone in rate" `Slow test_mission_monotone_in_rate;
        ] );
    ]
