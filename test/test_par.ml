(* Tests for Ftsched_par.Par: the deterministic Domain pool must be
   observationally identical to List.map/List.init for any worker count,
   re-raise the smallest-index exception like the sequential route, and
   leave the figure and adversary drivers bit-identical when fanned out. *)

module Par = Ftsched_par.Par
module Workload = Ftsched_exp.Workload
module Figures = Ftsched_exp.Figures
module Table = Ftsched_util.Table
module Adversary = Ftsched_sim.Adversary
module Ftsa = Ftsched_core.Ftsa
open Helpers

let jobs_range = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ---------------- pool = sequential, property-level ---------------- *)

let prop_map_matches =
  QCheck.Test.make ~name:"parallel_map = List.map for jobs in 1..8" ~count:60
    QCheck.(pair (small_list int) (int_range 1 8))
    (fun (xs, jobs) ->
      let f x = ((x * 31) lxor (x asr 2)) + 7 in
      Par.parallel_map ~jobs f xs = List.map f xs)

let prop_init_matches =
  QCheck.Test.make ~name:"parallel_init = List.init for jobs in 1..8"
    ~count:60
    QCheck.(pair (int_range 0 200) (int_range 1 8))
    (fun (n, jobs) ->
      let f i = float_of_int (i * i) *. 0.75 in
      Par.parallel_init ~jobs n f = List.init n f)

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      (* every odd index raises: the smallest failing index (1) must win,
         exactly as on the sequential route. *)
      match
        Par.parallel_init ~jobs 64 (fun i ->
            if i mod 2 = 1 then raise (Boom i) else i)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom i ->
          check_int (Printf.sprintf "jobs=%d smallest failing index" jobs) 1 i)
    jobs_range

let test_empty_and_singleton () =
  List.iter
    (fun jobs ->
      check_bool "map []" true (Par.parallel_map ~jobs succ [] = []);
      check_bool "map [x]" true (Par.parallel_map ~jobs succ [ 41 ] = [ 42 ]);
      check_bool "init 0" true (Par.parallel_init ~jobs 0 succ = []))
    jobs_range

let test_invalid_arguments_rejected () =
  check_bool "jobs=0 rejected" true
    (try
       ignore (Par.parallel_map ~jobs:0 Fun.id [ 1 ]);
       false
     with Invalid_argument _ -> true);
  check_bool "negative n rejected" true
    (try
       ignore (Par.parallel_init ~jobs:2 (-1) Fun.id);
       false
     with Invalid_argument _ -> true);
  check_bool "set_default_jobs 0 rejected" true
    (try
       Par.set_default_jobs 0;
       false
     with Invalid_argument _ -> true)

let test_set_default_jobs () =
  let before = Par.default_jobs () in
  Par.set_default_jobs 3;
  check_int "pinned default" 3 (Par.default_jobs ());
  Par.set_default_jobs before

let test_nested_calls_agree () =
  (* an inner parallel_map issued from a worker domain takes the
     sequential route; either way the value must match List.map. *)
  let outer =
    Par.parallel_init ~jobs:4 8 (fun i ->
        Par.parallel_map ~jobs:4 (fun x -> (x * 10) + i) [ 1; 2; 3 ])
  in
  let expect =
    List.init 8 (fun i -> List.map (fun x -> (x * 10) + i) [ 1; 2; 3 ])
  in
  check_bool "nested result identical" true (outer = expect)

(* ---------------- guided chunking ---------------- *)

let prop_chunk_plan_partitions =
  QCheck.Test.make
    ~name:"chunk_plan partitions [0,n) in order, every chunk >= 1" ~count:200
    QCheck.(pair (int_range 0 5000) (int_range 1 64))
    (fun (n, jobs) ->
      let plan = Par.chunk_plan ~n ~jobs in
      let rec covered at = function
        | [] -> at = n
        | (start, len) :: rest -> start = at && len >= 1 && covered (at + len) rest
      in
      covered 0 plan)

let test_chunk_plan_small_n_large_jobs () =
  (* the old fixed [n / (jobs * 8)] rule collapsed to chunk 1 for any
     n < 8*jobs — per-item atomic traffic.  Guided chunks stay >= 1 by
     construction; the point here is the plan stays short (no more
     chunks than items) and still covers everything. *)
  List.iter
    (fun (n, jobs) ->
      let plan = Par.chunk_plan ~n ~jobs in
      check_bool
        (Printf.sprintf "n=%d jobs=%d: at most n chunks" n jobs)
        true
        (List.length plan <= Int.max 1 n);
      check_int
        (Printf.sprintf "n=%d jobs=%d: covers n items" n jobs)
        n
        (List.fold_left (fun acc (_, len) -> acc + len) 0 plan))
    [ (0, 8); (1, 64); (7, 64); (10, 8); (100, 64) ]

let test_chunk_plan_guided_shape () =
  (* large n: the first chunk takes remaining/(2*jobs) and sizes never
     grow as the drain progresses — early chunks amortize the atomic,
     the tail shrinks to single items so no straggler serializes it *)
  let n = 10_000 and jobs = 4 in
  let plan = Par.chunk_plan ~n ~jobs in
  (match plan with
  | (start, first) :: _ ->
      check_int "first chunk starts at 0" 0 start;
      check_int "first chunk n/(2*jobs)" (n / (2 * jobs)) first
  | [] -> Alcotest.fail "empty plan");
  let rec non_increasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  check_bool "chunk sizes non-increasing" true (non_increasing plan);
  check_int "tail chunk is a single item" 1 (snd (List.hd (List.rev plan)));
  check_bool "invalid n rejected" true
    (try
       ignore (Par.chunk_plan ~n:(-1) ~jobs:2);
       false
     with Invalid_argument _ -> true);
  check_bool "invalid jobs rejected" true
    (try
       ignore (Par.chunk_plan ~n:4 ~jobs:0);
       false
     with Invalid_argument _ -> true)

(* ---------------- drivers bit-identical under fan-out ---------------- *)

let tiny_spec = Workload.with_graphs_per_point Workload.quick 2

let figure_digest ~jobs =
  let p =
    Figures.figure ~spec:tiny_spec ~master_seed:5 ~crash_samples:1 ~eps:1
      ~crash_counts:[ 0; 1 ] ~jobs ()
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.map Table.to_csv
             [ p.Figures.bounds; p.Figures.crash; p.Figures.overhead;
               p.Figures.mc_defeats ])))

let test_figure_jobs_bit_identical () =
  check_bool "figure panels: jobs=4 = jobs=1" true
    (figure_digest ~jobs:4 = figure_digest ~jobs:1)

let adversary_report ~jobs =
  let inst = random_instance ~seed:31 ~n_tasks:20 ~m:4 () in
  let s = Ftsa.schedule inst ~eps:2 in
  Adversary.search ~seed:11 ~links:1 ~jobs s ~count:2

let test_adversary_jobs_bit_identical () =
  let r1 = adversary_report ~jobs:1 in
  let r4 = adversary_report ~jobs:4 in
  check_bool "adversary report: jobs=4 = jobs=1 (incl. evaluations)" true
    (r1 = r4)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          quick prop_map_matches;
          quick prop_init_matches;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "invalid arguments" `Quick
            test_invalid_arguments_rejected;
          Alcotest.test_case "set_default_jobs" `Quick test_set_default_jobs;
          Alcotest.test_case "nested calls" `Quick test_nested_calls_agree;
          quick prop_chunk_plan_partitions;
          Alcotest.test_case "chunking: small n, many jobs" `Quick
            test_chunk_plan_small_n_large_jobs;
          Alcotest.test_case "chunking: guided shape" `Quick
            test_chunk_plan_guided_shape;
        ] );
      ( "regression",
        [
          Alcotest.test_case "figure digest" `Slow
            test_figure_jobs_bit_identical;
          Alcotest.test_case "adversary digest" `Slow
            test_adversary_jobs_bit_identical;
        ] );
    ]
