(* Tests for Ftsched_serve: wire protocol, LRU cache, hardened
   Serialize caps, shared CLI converters, and the crash-only server
   itself — a concurrent chaos soak against an in-process server with
   the accounting oracle, file-descriptor stability, and byte-identical
   responses across worker-pool sizes. *)

module Protocol = Ftsched_serve.Protocol
module Cache = Ftsched_serve.Cache
module Server = Ftsched_serve.Server
module Chaos = Ftsched_serve.Chaos_client
module Serialize = Ftsched_schedule.Serialize
module Converters = Ftsched_cli.Converters
open Helpers

(* ------------------------------------------------------------------ *)
(* Protocol framing                                                    *)

let feed_all reader s =
  let b = Bytes.of_string s in
  Protocol.reader_feed reader b (Bytes.length b)

let test_frame_roundtrip () =
  let payload = "schedule ftsa 1 0 infinity\nftsched v1\ninstance 0 1 0" in
  let reader = Protocol.create_reader () in
  feed_all reader (Protocol.encode_frame payload);
  (match Protocol.reader_next reader with
  | `Frame p -> Alcotest.(check string) "payload" payload p
  | _ -> Alcotest.fail "expected a frame");
  match Protocol.reader_next reader with
  | `More -> ()
  | _ -> Alcotest.fail "expected More after the only frame"

let test_frame_split_feed () =
  let payload = String.make 1000 'x' in
  let frame = Protocol.encode_frame payload in
  let reader = Protocol.create_reader () in
  String.iteri
    (fun i c ->
      (match Protocol.reader_next reader with
      | `More -> ()
      | _ when i < String.length frame - 1 ->
          Alcotest.fail "frame completed early"
      | _ -> ());
      feed_all reader (String.make 1 c))
    frame;
  match Protocol.reader_next reader with
  | `Frame p -> Alcotest.(check string) "payload survives 1-byte feeds" payload p
  | _ -> Alcotest.fail "expected a frame after the last byte"

let test_frame_bad_magic () =
  let reader = Protocol.create_reader () in
  feed_all reader "XXXX\x00\x00\x00\x01a";
  (match Protocol.reader_next reader with
  | `Error Protocol.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  (* poisoned: further feeds never produce frames *)
  feed_all reader (Protocol.encode_frame "health");
  match Protocol.reader_next reader with
  | `More -> ()
  | _ -> Alcotest.fail "poisoned reader must stay silent"

let test_frame_too_large () =
  let reader = Protocol.create_reader ~max_frame:64 () in
  feed_all reader "FTSB\x00\x01\x00\x00";
  match Protocol.reader_next reader with
  | `Error (Protocol.Frame_too_large { declared; limit }) ->
      check_int "declared" 65536 declared;
      check_int "limit" 64 limit
  | _ -> Alcotest.fail "expected Frame_too_large before any payload byte"

let test_parse_request () =
  (match Protocol.parse_request "schedule ftsa 1 7 infinity\nbody" with
  | Ok (Protocol.Schedule { algo; eps; seed; body }, budget) ->
      Alcotest.(check string) "algo" "ftsa" algo;
      check_int "eps" 1 eps;
      check_int "seed" 7 seed;
      Alcotest.(check string) "body" "body" body;
      check_bool "budget" true (budget = infinity)
  | _ -> Alcotest.fail "schedule request must parse");
  let is_malformed s =
    match Protocol.parse_request s with
    | Error (Protocol.Malformed _) -> true
    | _ -> false
  in
  check_bool "negative eps" true (is_malformed "schedule ftsa -1 0 1.0\nx");
  check_bool "zero budget" true (is_malformed "schedule ftsa 1 0 0\nx");
  check_bool "missing args" true (is_malformed "simulate 1\nx");
  check_bool "empty" true (is_malformed "");
  match Protocol.parse_request "frobnicate 1" with
  | Error (Protocol.Unsupported _) -> ()
  | _ -> Alcotest.fail "unknown tag must be Unsupported"

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)

let test_cache_lru () =
  let c = Cache.create ~slots:2 in
  Cache.add c "a" "1";
  Cache.add c "b" "2";
  check_bool "a hit" true (Cache.find c "a" = Some "1");
  Cache.add c "c" "3" (* evicts b, the least recently used *);
  check_bool "b evicted" true (Cache.find c "b" = None);
  check_bool "a kept" true (Cache.find c "a" = Some "1");
  check_bool "c kept" true (Cache.find c "c" = Some "3");
  check_int "length bounded" 2 (Cache.length c);
  check_int "hits" 3 (Cache.hits c);
  check_int "misses" 1 (Cache.misses c);
  Alcotest.check_raises "slots must be positive"
    (Invalid_argument "Cache.create: slots must be positive") (fun () ->
      ignore (Cache.create ~slots:0))

(* ------------------------------------------------------------------ *)
(* Hardened Serialize caps                                             *)

let rejects doc =
  match Serialize.instance_of_string doc with
  | exception Invalid_argument _ -> true
  | exception Failure _ -> true
  | _ -> false

let rejects_with_cap doc =
  match Serialize.instance_of_string doc with
  | exception Invalid_argument msg ->
      check_bool
        (Printf.sprintf "descriptive message %S" msg)
        true
        (String.length msg > 10);
      true
  | exception Failure _ -> false
  | _ -> false

let test_serialize_caps () =
  check_bool "huge task count" true
    (rejects_with_cap "ftsched v1\ninstance 999999999 2 0");
  check_bool "huge edge count" true
    (rejects_with_cap "ftsched v1\ninstance 2 2 999999999");
  check_bool "huge proc count" true
    (rejects_with_cap "ftsched v1\ninstance 2 999999 0");
  check_bool "negative count" true
    (rejects_with_cap "ftsched v1\ninstance -1 2 0");
  check_bool "zero procs" true (rejects "ftsched v1\ninstance 1 0 0");
  (* counts above the input actually present, though below the caps *)
  check_bool "counts exceed remaining input" true
    (rejects_with_cap "ftsched v1\ninstance 1000 4 0\nlabel t0");
  (* oversized label *)
  let big_label = String.make (Serialize.max_label_length + 1) 'x' in
  check_bool "oversized label" true
    (rejects_with_cap
       (Printf.sprintf "ftsched v1\ninstance 1 1 0\nlabel %s\ndelay 1\nexec 1"
          big_label));
  (* the caps themselves are exported and sane *)
  check_bool "caps exported" true
    (Serialize.max_tasks > 0 && Serialize.max_procs > 0
    && Serialize.max_edges > 0
    && Serialize.max_label_length > 0);
  (* a pristine round-trip still works *)
  let inst = random_instance ~n_tasks:12 ~m:3 ~seed:5 () in
  let doc = Serialize.instance_to_string inst in
  check_bool "round-trip unaffected" true
    (Serialize.instance_to_string (Serialize.instance_of_string doc) = doc)

(* ------------------------------------------------------------------ *)
(* Shared CLI converters                                               *)

let conv_ok conv s =
  match Cmdliner.Arg.conv_parser conv s with Ok _ -> true | Error _ -> false

let conv_msg conv s =
  match Cmdliner.Arg.conv_parser conv s with
  | Error (`Msg m) -> m
  | Ok _ -> ""

let test_converters () =
  check_bool "pos_int 4" true (conv_ok Converters.pos_int "4");
  check_bool "pos_int 0" false (conv_ok Converters.pos_int "0");
  check_bool "pos_int -3" false (conv_ok Converters.pos_int "-3");
  check_bool "pos_int junk" false (conv_ok Converters.pos_int "four");
  check_bool "nonneg_int 0" true (conv_ok Converters.nonneg_int "0");
  check_bool "nonneg_int -1" false (conv_ok Converters.nonneg_int "-1");
  check_bool "prob 0.5" true (conv_ok Converters.prob "0.5");
  check_bool "prob 1.5" false (conv_ok Converters.prob "1.5");
  check_bool "prob -0.1" false (conv_ok Converters.prob "-0.1");
  check_bool "pos_float 2.5" true (conv_ok Converters.pos_float "2.5");
  check_bool "pos_float 0" false (conv_ok Converters.pos_float "0");
  check_bool "pos_float inf" false (conv_ok Converters.pos_float "inf");
  check_bool "nonneg_float 0" true (conv_ok Converters.nonneg_float "0");
  check_bool "nonneg_float nan" false (conv_ok Converters.nonneg_float "nan");
  (* errors are descriptive, not bare parse failures *)
  check_bool "descriptive positive-int error" true
    (conv_msg Converters.pos_int "0" = "expected a positive integer");
  check_bool "descriptive probability error" true
    (conv_msg Converters.prob "2" = "expected a probability in [0, 1]")

(* ------------------------------------------------------------------ *)
(* Parser-safety oracle                                                *)

let test_parser_oracle () =
  for seed = 0 to 5 do
    let v1 = Ftsched_fuzz.Fuzz.check_parser ~seed in
    let v2 = Ftsched_fuzz.Fuzz.check_parser ~seed in
    check_int
      (Printf.sprintf "seed %d clean" seed)
      0 (List.length v1);
    check_int "deterministic" (List.length v1) (List.length v2)
  done

(* ------------------------------------------------------------------ *)
(* Soak: concurrent chaos clients vs an in-process server              *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_soak () =
  let fds_before = count_fds () in
  let report = Chaos.self_test ~jobs:2 ~threads:4 ~seeds:12 () in
  let o = report.Chaos.outcome in
  check_int "12 sessions ran" 12 o.Chaos.sessions;
  check_bool "requests were sent" true (o.Chaos.requests_sent > 50);
  check_bool "identity checks ran" true (o.Chaos.identity_checks > 0);
  Alcotest.(check (list string)) "no client-side violations" []
    o.Chaos.violations;
  Alcotest.(check (list string)) "accounting oracle clean" []
    report.Chaos.accounting;
  let m = report.Chaos.metrics in
  check_bool "work was accepted" true (m.Server.requests_accepted > 0);
  check_bool "cache was exercised" true (m.Server.cache_hits > 0);
  let fds_after = count_fds () in
  check_int "no leaked file descriptors" fds_before fds_after

(* ------------------------------------------------------------------ *)
(* Byte-identical responses across worker-pool sizes                   *)

let with_server ~jobs f =
  let path = Filename.temp_file "ftsched-test-" ".sock" in
  Sys.remove path;
  let config =
    { Server.default_config with Server.jobs = Some jobs; capacity = 32 }
  in
  let server = Server.create ~config (Server.Unix_socket path) in
  let thread = Thread.create (fun () -> ignore (Server.serve server)) () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join thread;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f (Server.Unix_socket path))

let send_and_collect address payloads =
  let fd =
    match address with
    | Server.Unix_socket path ->
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
        fd
    | Server.Tcp _ -> Alcotest.fail "unix sockets only in this test"
  in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let reader = Protocol.create_reader () in
  let buf = Bytes.create 4096 in
  List.map
    (fun payload ->
      let frame = Protocol.encode_frame payload in
      let n = String.length frame in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write_substring fd frame !off (n - !off)
      done;
      let rec read_one () =
        match Protocol.reader_next reader with
        | `Frame p -> p
        | `Error _ -> Alcotest.fail "client framing broke"
        | `More -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> Alcotest.fail "server closed mid-response"
            | k ->
                Protocol.reader_feed reader buf k;
                read_one ())
      in
      read_one ())
    payloads

let test_jobs_identical_responses () =
  let payloads =
    List.concat_map
      (fun seed ->
        let inst = random_instance ~n_tasks:15 ~m:4 ~seed () in
        let doc = Serialize.instance_to_string inst in
        let sched =
          Serialize.schedule_to_string
            (Ftsched_core.Ftsa.schedule ~seed inst ~eps:1)
        in
        [
          Printf.sprintf "schedule ftsa 1 %d infinity\n%s" seed doc;
          Printf.sprintf "schedule heft 0 0 infinity\n%s" doc;
          Printf.sprintf "simulate 1 %d infinity\n%s" seed sched;
          Printf.sprintf "stream %d 6.0 4 infinity" seed;
        ])
      [ 11; 22; 33 ]
  in
  let r1 = with_server ~jobs:1 (fun a -> send_and_collect a payloads) in
  let r4 = with_server ~jobs:4 (fun a -> send_and_collect a payloads) in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "response %d identical for -j 1 and -j 4" i)
        a b)
    (List.combine r1 r4);
  (* and every response is a typed ok *)
  List.iter
    (fun r ->
      match Protocol.classify_response r with
      | `Ok _ -> ()
      | `Error (code, detail) ->
          Alcotest.fail (Printf.sprintf "typed error %s: %s" code detail)
      | `Junk -> Alcotest.fail "junk response")
    r1

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "split feeds" `Quick test_frame_split_feed;
          Alcotest.test_case "bad magic poisons" `Quick test_frame_bad_magic;
          Alcotest.test_case "too-large before alloc" `Quick
            test_frame_too_large;
          Alcotest.test_case "request parsing" `Quick test_parse_request;
        ] );
      ("cache", [ Alcotest.test_case "lru" `Quick test_cache_lru ]);
      ( "hardening",
        [
          Alcotest.test_case "serialize caps" `Quick test_serialize_caps;
          Alcotest.test_case "parser-safety oracle" `Quick test_parser_oracle;
        ] );
      ( "converters",
        [ Alcotest.test_case "shared validators" `Quick test_converters ] );
      ( "server",
        [
          Alcotest.test_case "chaos soak" `Quick test_soak;
          Alcotest.test_case "jobs-count response identity" `Quick
            test_jobs_identical_responses;
        ] );
    ]
