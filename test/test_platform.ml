(* Tests for Ftsched_platform. *)

module Platform = Ftsched_platform.Platform
module Rng = Ftsched_util.Rng
open Helpers

let test_create_validation () =
  Alcotest.check_raises "not square" (Invalid_argument "Platform.create: not square")
    (fun () -> ignore (Platform.create ~delay:[| [| 0.; 1. |] |]));
  Alcotest.check_raises "nonzero diagonal"
    (Invalid_argument "Platform.create: nonzero diagonal") (fun () ->
      ignore (Platform.create ~delay:[| [| 1. |] |]));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Platform.create: bad delay") (fun () ->
      ignore (Platform.create ~delay:[| [| 0.; -1. |]; [| 1.; 0. |] |]));
  Alcotest.check_raises "empty" (Invalid_argument "Platform.create: empty")
    (fun () -> ignore (Platform.create ~delay:[||]))

let test_accessors () =
  let p = Platform.create ~delay:[| [| 0.; 2. |]; [| 3.; 0. |] |] in
  check_int "m" 2 (Platform.n_procs p);
  check_float "d(0,1)" 2. (Platform.delay p 0 1);
  check_float "d(1,0)" 3. (Platform.delay p 1 0);
  check_float "diag" 0. (Platform.delay p 1 1);
  check_float "avg over ordered pairs" 2.5 (Platform.avg_delay p);
  check_float "max from 0" 2. (Platform.max_delay_from p 0);
  check_float "max overall" 3. (Platform.max_delay p);
  Alcotest.(check (array int)) "procs" [| 0; 1 |] (Platform.procs p)

let test_create_copies_input () =
  let delay = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let p = Platform.create ~delay in
  delay.(0).(1) <- 99.;
  check_float "defensive copy" 1. (Platform.delay p 0 1)

let test_homogeneous () =
  let p = Platform.homogeneous ~m:4 ~unit_delay:0.7 in
  check_float "avg" 0.7 (Platform.avg_delay p);
  check_float "max" 0.7 (Platform.max_delay p);
  check_float "delay" 0.7 (Platform.delay p 1 3);
  check_float "diag" 0. (Platform.delay p 2 2)

let test_single_proc () =
  let p = Platform.homogeneous ~m:1 ~unit_delay:0.5 in
  check_float "no pairs: avg 0" 0. (Platform.avg_delay p);
  check_float "max from 0" 0. (Platform.max_delay_from p 0)

let prop_random_in_range =
  QCheck.Test.make ~name:"random delays within bounds" ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let p = Platform.random rng ~m:6 ~delay_lo:0.5 ~delay_hi:1.0 () in
      let ok = ref true in
      for k = 0 to 5 do
        for h = 0 to 5 do
          let d = Platform.delay p k h in
          if k = h then (if d <> 0. then ok := false)
          else if d < 0.5 || d >= 1.0 then ok := false
        done
      done;
      !ok)

let prop_random_symmetric =
  QCheck.Test.make ~name:"random symmetric by default" ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let p = Platform.random rng ~m:5 ~delay_lo:0.1 ~delay_hi:2.0 () in
      let ok = ref true in
      for k = 0 to 4 do
        for h = 0 to 4 do
          if Platform.delay p k h <> Platform.delay p h k then ok := false
        done
      done;
      !ok)

let test_random_asymmetric_allowed () =
  let rng = Rng.create ~seed:42 in
  let p = Platform.random rng ~m:8 ~delay_lo:0.1 ~delay_hi:2.0 ~symmetric:false () in
  (* with 56 independent draws, at least one pair should differ *)
  let asym = ref false in
  for k = 0 to 7 do
    for h = 0 to 7 do
      if Platform.delay p k h <> Platform.delay p h k then asym := true
    done
  done;
  check_bool "asymmetric" true !asym

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)

module Topology = Ftsched_platform.Topology

let test_ring_delays () =
  let p = Topology.ring ~m:6 ~hop_delay:1.0 () in
  check_float "neighbour" 1. (Platform.delay p 0 1);
  check_float "wraparound neighbour" 1. (Platform.delay p 0 5);
  check_float "opposite" 3. (Platform.delay p 0 3);
  check_float "two hops" 2. (Platform.delay p 1 5)

let test_grid_delays () =
  let p = Topology.grid ~rows:3 ~cols:3 ~hop_delay:0.5 () in
  (* manhattan distance x hop *)
  check_float "corner to corner" 2. (Platform.delay p 0 8);
  check_float "adjacent" 0.5 (Platform.delay p 0 1);
  check_int "9 procs" 9 (Platform.n_procs p)

let test_star_delays () =
  let p = Topology.star ~leaves:5 ~hop_delay:2.0 () in
  check_float "hub to leaf" 2. (Platform.delay p 0 3);
  check_float "leaf to leaf via hub" 4. (Platform.delay p 1 5)

let test_of_links_validation () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Topology: disconnected platform") (fun () ->
      ignore (Topology.of_links ~m:3 ~links:[ (0, 1, 1.) ]));
  Alcotest.check_raises "self link"
    (Invalid_argument "Topology: malformed link") (fun () ->
      ignore (Topology.of_links ~m:2 ~links:[ (0, 0, 1.) ]))

let test_of_links_triangle_shortcut () =
  (* going around is cheaper than the direct heavy link *)
  let p =
    Topology.of_links ~m:3 ~links:[ (0, 1, 1.); (1, 2, 1.); (0, 2, 10.) ]
  in
  check_float "shortest path wins" 2. (Platform.delay p 0 2)

let prop_ring_jitter_bounds =
  QCheck.Test.make ~name:"jittered ring stays within hop bounds" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let p = Topology.ring ~rng ~jitter:0.2 ~m:8 ~hop_delay:1.0 () in
      let ok = ref true in
      for a = 0 to 7 do
        for b = 0 to 7 do
          if a <> b then begin
            let d = Platform.delay p a b in
            (* at most 4 hops on an 8-ring, each within [0.8, 1.2) *)
            if d < 0.8 || d > 4. *. 1.2 then ok := false
          end
        done
      done;
      !ok)

let () =
  Alcotest.run "platform"
    [
      ( "platform",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "defensive copy" `Quick test_create_copies_input;
          Alcotest.test_case "homogeneous" `Quick test_homogeneous;
          Alcotest.test_case "single proc" `Quick test_single_proc;
          Alcotest.test_case "asymmetric option" `Quick test_random_asymmetric_allowed;
          quick prop_random_in_range;
          quick prop_random_symmetric;
        ] );
      ( "topology",
        [
          Alcotest.test_case "ring" `Quick test_ring_delays;
          Alcotest.test_case "grid" `Quick test_grid_delays;
          Alcotest.test_case "star" `Quick test_star_delays;
          Alcotest.test_case "of_links validation" `Quick test_of_links_validation;
          Alcotest.test_case "shortest path" `Quick test_of_links_triangle_shortcut;
          quick prop_ring_jitter_bounds;
        ] );
    ]
