(* Tests for Ftsched_exp: workload generation, the per-graph runner and
   the figure drivers. *)

module Workload = Ftsched_exp.Workload
module Runner = Ftsched_exp.Runner
module Figures = Ftsched_exp.Figures
module Figures_claims = Ftsched_exp.Claims
module Table = Ftsched_util.Table
module Granularity = Ftsched_model.Granularity
open Helpers

let tiny_spec = Workload.with_graphs_per_point Workload.quick 2

let test_paper_spec_constants () =
  check_int "20 processors" 20 Workload.paper.Workload.n_procs;
  check_int "60 graphs" 60 Workload.paper.Workload.graphs_per_point;
  check_int "tasks lo" 100 Workload.paper.Workload.tasks_lo;
  check_int "tasks hi" 150 Workload.paper.Workload.tasks_hi;
  check_int "10 granularities" 10 (List.length Workload.granularities);
  check_float "first" 0.2 (List.hd Workload.granularities);
  check_float "last" 2.0 (List.nth Workload.granularities 9)

let test_workload_instance_properties () =
  let inst =
    Workload.instance Workload.paper ~master_seed:1 ~granularity:0.6 ~index:3
  in
  let n = Instance.n_tasks inst in
  check_bool "task count in [100,150]" true (n >= 100 && n <= 150);
  check_int "m" 20 (Instance.n_procs inst);
  check_bool "granularity hit" true
    (Float.abs (Granularity.granularity inst -. 0.6) < 1e-6)

let test_workload_deterministic () =
  let a = Workload.instance tiny_spec ~master_seed:9 ~granularity:1.0 ~index:0 in
  let b = Workload.instance tiny_spec ~master_seed:9 ~granularity:1.0 ~index:0 in
  check_int "same size" (Instance.n_tasks a) (Instance.n_tasks b);
  check_float "same exec cell" (Instance.exec a 0 0) (Instance.exec b 0 0)

let test_workload_index_varies () =
  let a = Workload.instance tiny_spec ~master_seed:9 ~granularity:1.0 ~index:0 in
  let b = Workload.instance tiny_spec ~master_seed:9 ~granularity:1.0 ~index:1 in
  check_bool "different instances" true
    (Instance.n_tasks a <> Instance.n_tasks b
    || Instance.exec a 0 0 <> Instance.exec b 0 0)

let test_run_graph_metrics () =
  let inst = random_instance ~seed:31 ~m:6 () in
  let r = Runner.run_graph inst ~eps:1 ~crash_counts:[ 0; 1 ] ~crash_samples:2 () in
  let keys = List.map fst r.Runner.metrics in
  List.iter
    (fun k ->
      check_bool (k ^ " present") true (List.mem k keys))
    [
      "ftsa_lb"; "ftsa_ub"; "mc_lb"; "mc_ub"; "ftbar_lb"; "ftbar_ub";
      "ff_ftsa"; "ff_ftbar"; "ftsa_crash0"; "ftsa_crash1"; "mc_crash1";
      "ftbar_crash1";
    ];
  check_bool "normalizer positive" true (r.Runner.normalizer > 0.);
  check_bool "defeat rate in [0,1]" true
    (r.Runner.mc_strict_defeated >= 0. && r.Runner.mc_strict_defeated <= 1.);
  (* bound sanity on the raw metrics *)
  let get k = List.assoc k r.Runner.metrics in
  check_bool "lb <= ub" true (get "ftsa_lb" <= get "ftsa_ub" +. 1e-6);
  check_bool "crash0 = lb" true
    (Float.abs (get "ftsa_crash0" -. get "ftsa_lb") < 1e-6)

let test_mean_of () =
  let inst = random_instance ~seed:32 ~m:6 () in
  let r = Runner.run_graph inst ~eps:1 ~crash_counts:[ 0 ] ~crash_samples:1 () in
  let mean = Runner.mean_of [ r ] "ftsa_lb" in
  check_float "single-graph mean"
    (List.assoc "ftsa_lb" r.Runner.metrics /. r.Runner.normalizer)
    mean;
  check_bool "unknown metric rejected" true
    (try
       ignore (Runner.mean_of [ r ] "nope");
       false
     with Invalid_argument _ -> true)

let test_figure_tables_shape () =
  let p =
    Figures.figure ~spec:tiny_spec ~master_seed:5 ~crash_samples:1 ~eps:1
      ~crash_counts:[ 0; 1 ] ()
  in
  check_int "bounds rows = 10 granularities" 10 (Table.row_count p.Figures.bounds);
  check_int "crash rows" 10 (Table.row_count p.Figures.crash);
  check_int "overhead rows" 10 (Table.row_count p.Figures.overhead);
  check_int "defeat rows" 10 (Table.row_count p.Figures.mc_defeats);
  let csv = Table.to_csv p.Figures.bounds in
  check_bool "has FTSA-LB column" true (contains csv "FTSA-LB");
  check_bool "has FaultFree col" true (contains csv "FaultFree-FTSA")

let test_figure4_tables () =
  let latency, overhead =
    Figures.figure4 ~spec:tiny_spec ~master_seed:5 ~crash_samples:1 ()
  in
  check_int "latency rows" 10 (Table.row_count latency);
  check_int "overhead rows" 10 (Table.row_count overhead);
  check_bool "2-crash column" true
    (contains (Table.to_csv latency) "FTSA-2crash")

let test_table1_shape () =
  let t = Figures.table1 ~sizes:[ 30; 60 ] ~m:8 ~eps:2 () in
  check_int "rows" 2 (Table.row_count t);
  check_bool "has FTBAR column" true (contains (Table.to_csv t) "FTBAR (s)")

let test_paper_sizes () =
  Alcotest.(check (list int)) "paper sizes"
    [ 100; 500; 1000; 2000; 3000; 5000 ]
    Figures.paper_sizes

let micro_spec =
  (* tiniest spec that still exercises the sweep paths quickly *)
  Workload.with_procs (Workload.with_graphs_per_point Workload.quick 1) 8

let test_contention_ablation_shape () =
  let t = Figures.contention_ablation ~spec:micro_spec ~eps:1 ~ports:[ 1 ] () in
  check_int "rows" 10 (Table.row_count t);
  let csv = Table.to_csv t in
  check_bool "free column" true (contains csv "FTSA free");
  check_bool "one-port column" true (contains csv "MC-FTSA 1-port")

let test_redundancy_ablation_shape () =
  let t = Figures.redundancy_ablation ~spec:micro_spec ~scenarios_per_graph:2 ~eps:2 () in
  check_int "one row per k" 3 (Table.row_count t);
  check_bool "defeat column" true (contains (Table.to_csv t) "defeat rate")

let test_reliability_ablation_shape () =
  let t =
    Figures.reliability_ablation ~spec:micro_spec ~trials:50 ~p_fail:0.1 ()
  in
  check_int "eps 0..4" 5 (Table.row_count t);
  check_bool "bound column" true (contains (Table.to_csv t) "Thm-4.1 bound")

let test_rftsa_ablation_shape () =
  let t = Figures.rftsa_ablation ~spec:micro_spec ~trials:20 ~eps:1 () in
  check_int "one row per alpha" 5 (Table.row_count t);
  check_bool "mission column" true
    (contains (Table.to_csv t) "mission reliability")

let test_procs_sweep_shape_and_trend () =
  let t =
    Figures.procs_sweep ~spec:micro_spec ~crash_samples:1 ~eps:1
      ~procs:[ 4; 16 ] ()
  in
  check_int "rows" 2 (Table.row_count t);
  let csv = Table.to_csv t in
  check_bool "overhead column" true (contains csv "overhead %");
  (* replication hurts more on the small platform *)
  match String.split_on_char '\n' csv with
  | _header :: row4 :: row16 :: _ ->
      let last r = List.nth (String.split_on_char ',' r)
                     (List.length (String.split_on_char ',' r) - 1) in
      check_bool "overhead decreases with m" true
        (float_of_string (last row4) > float_of_string (last row16))
  | _ -> Alcotest.fail "csv shape"

(* Claims verifier: the shape is stable at any spec; at >= 4 graphs per
   point the verdicts themselves are expected to all hold (the bench run
   re-verifies them at full scale). *)
let test_claims () =
  let spec = Workload.with_graphs_per_point Workload.quick 4 in
  let verdicts = Figures_claims.verify ~spec () in
  check_int "twelve claims" 12 (List.length verdicts);
  List.iter
    (fun v ->
      check_bool
        (Printf.sprintf "claim %s holds (%s)" v.Figures_claims.id
           v.Figures_claims.detail)
        true v.Figures_claims.holds)
    verdicts;
  check_bool "all_hold" true (Figures_claims.all_hold verdicts);
  check_int "table rows" 12 (Table.row_count (Figures_claims.to_table verdicts))

let () =
  Alcotest.run "exp"
    [
      ( "workload",
        [
          Alcotest.test_case "paper constants" `Quick test_paper_spec_constants;
          Alcotest.test_case "instance properties" `Quick
            test_workload_instance_properties;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "index varies" `Quick test_workload_index_varies;
        ] );
      ( "runner",
        [
          Alcotest.test_case "metric keys" `Quick test_run_graph_metrics;
          Alcotest.test_case "mean_of" `Quick test_mean_of;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure panels" `Slow test_figure_tables_shape;
          Alcotest.test_case "figure 4" `Slow test_figure4_tables;
          Alcotest.test_case "table 1" `Quick test_table1_shape;
          Alcotest.test_case "paper sizes" `Quick test_paper_sizes;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "contention shape" `Slow
            test_contention_ablation_shape;
          Alcotest.test_case "redundancy shape" `Slow
            test_redundancy_ablation_shape;
          Alcotest.test_case "reliability shape" `Slow
            test_reliability_ablation_shape;
          Alcotest.test_case "rftsa shape" `Slow test_rftsa_ablation_shape;
          Alcotest.test_case "procs sweep" `Slow test_procs_sweep_shape_and_trend;
        ] );
      ( "claims",
        [ Alcotest.test_case "paper claims verify" `Slow test_claims ] );
    ]
