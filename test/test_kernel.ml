(* lib/kernel: Proc_state timeline properties, the trace sink, and a
   differential harness running every scheduler through the shared
   driver on seeded instances. *)

module Proc_state = Ftsched_kernel.Proc_state
module Trace = Ftsched_kernel.Trace
module Metrics = Ftsched_schedule.Metrics
module Ftsa = Ftsched_core.Ftsa
module Mc_ftsa = Ftsched_core.Mc_ftsa
open Helpers

(* ------------------------------------------------------------------ *)
(* Proc_state                                                          *)

(* A workload is a list of (ready, duration) requests against one
   insertion timeline; encoded over small ints for stable shrinking. *)
let workload_arb =
  QCheck.(
    list_of_size
      Gen.(int_range 1 60)
      (pair (int_bound 500) (int_bound 60)))

let decode (r, d) = (float_of_int r /. 10., float_of_int (d + 1) /. 10.)

let prop_gap_no_overlap =
  QCheck.Test.make ~name:"earliest gap never overlaps committed slots"
    ~count:300 workload_arb (fun ops ->
      let ps = Proc_state.create ~m:1 ~insertion:true in
      List.for_all
        (fun op ->
          let ready, duration = decode op in
          let start = Proc_state.earliest_gap ps 0 ~ready ~duration in
          let before = Proc_state.slots ps 0 in
          let finish = start +. duration in
          let ok =
            Array.for_all
              (fun (s, f) -> finish <= s || f <= start)
              before
          in
          Proc_state.commit_slot ps 0 ~start ~finish ~pess_finish:finish;
          ok)
        ops)

let prop_gap_after_ready =
  QCheck.Test.make ~name:"earliest gap never starts before ready" ~count:300
    workload_arb (fun ops ->
      let ps = Proc_state.create ~m:1 ~insertion:true in
      List.for_all
        (fun op ->
          let ready, duration = decode op in
          let start = Proc_state.earliest_gap ps 0 ~ready ~duration in
          Proc_state.commit_slot ps 0 ~start ~finish:(start +. duration)
            ~pess_finish:(start +. duration);
          start >= ready)
        ops)

let prop_slots_sorted_disjoint =
  QCheck.Test.make ~name:"committed slots stay sorted and disjoint" ~count:300
    workload_arb (fun ops ->
      let ps = Proc_state.create ~m:1 ~insertion:true in
      List.iter
        (fun op ->
          let ready, duration = decode op in
          let start = Proc_state.earliest_gap ps 0 ~ready ~duration in
          Proc_state.commit_slot ps 0 ~start ~finish:(start +. duration)
            ~pess_finish:(start +. duration))
        ops;
      let slots = Proc_state.slots ps 0 in
      let ok = ref true in
      Array.iteri
        (fun i (s, f) ->
          if f < s then ok := false;
          if i > 0 then begin
            let _, pf = slots.(i - 1) in
            if s < pf then ok := false
          end)
        slots;
      !ok)

let prop_iter_slots_matches_slots =
  QCheck.Test.make
    ~name:"iter_slots visits exactly the slots array, in order" ~count:300
    workload_arb (fun ops ->
      let ps = Proc_state.create ~m:2 ~insertion:true in
      List.iteri
        (fun i op ->
          let p = i mod 2 in
          let ready, duration = decode op in
          let start = Proc_state.earliest_gap ps p ~ready ~duration in
          Proc_state.commit_slot ps p ~start ~finish:(start +. duration)
            ~pess_finish:(start +. duration))
        ops;
      let agree p =
        let seen = ref [] in
        Proc_state.iter_slots ps p (fun ~start ~finish ->
            seen := (start, finish) :: !seen);
        List.rev !seen = Array.to_list (Proc_state.slots ps p)
      in
      agree 0 && agree 1)

let test_iter_slots_empty () =
  (* no committed slots, and non-insertion states (which track only the
     ready horizon) must both iterate zero times *)
  let count ps p =
    let n = ref 0 in
    Proc_state.iter_slots ps p (fun ~start:_ ~finish:_ -> incr n);
    !n
  in
  check_int "fresh insertion state" 0
    (count (Proc_state.create ~m:1 ~insertion:true) 0);
  let ps = Proc_state.create ~m:1 ~insertion:false in
  Proc_state.commit_slot ps 0 ~start:0. ~finish:2. ~pess_finish:2.;
  check_int "non-insertion state records no slots" 0 (count ps 0)

let test_ready_times () =
  let ps = Proc_state.create ~m:2 ~insertion:false in
  Proc_state.commit_slot ps 0 ~start:1. ~finish:5. ~pess_finish:7.;
  Proc_state.commit_slot ps 0 ~start:0. ~finish:3. ~pess_finish:4.;
  check_float "ready_opt keeps the max" 5. (Proc_state.ready_opt ps 0);
  check_float "ready_pess keeps the max" 7. (Proc_state.ready_pess ps 0);
  check_float "other processor untouched" 0. (Proc_state.ready_opt ps 1);
  Alcotest.check_raises "no gap search without insertion"
    (Invalid_argument "Proc_state.earliest_gap: non-insertion state") (fun () ->
      ignore (Proc_state.earliest_gap ps 0 ~ready:0. ~duration:1.))

(* ------------------------------------------------------------------ *)
(* Differential harness: every scheduler through the kernel driver.    *)

let all_schedulers ~m ~eps =
  let rates = Array.init m (fun p -> if p mod 2 = 0 then 0.0001 else 0.002) in
  let domains = Array.init m (fun p -> p mod (eps + 2)) in
  [
    ("ftsa", fun ?trace inst -> Ftsa.schedule ~seed:7 ?trace inst ~eps);
    ("mc-greedy", fun ?trace inst -> Mc_ftsa.schedule ~seed:7 ?trace inst ~eps);
    ( "mc-bottleneck",
      fun ?trace inst ->
        Mc_ftsa.schedule ~seed:7 ~strategy:Mc_ftsa.Bottleneck ?trace inst ~eps );
    ( "ca-ftsa",
      fun ?trace inst -> Ftsched_core.Ca_ftsa.schedule ~seed:7 ?trace inst ~eps );
    ( "r-ftsa",
      fun ?trace inst ->
        Ftsched_core.R_ftsa.schedule ~seed:7 ?trace ~rates inst ~eps );
    ( "ftsa-domains",
      fun ?trace inst ->
        Ftsched_core.Ftsa_domains.schedule ~seed:7 ?trace ~domains inst ~eps );
    ( "ftbar",
      fun ?trace inst -> Ftsched_baseline.Ftbar.schedule ~seed:7 ?trace inst ~npf:eps );
    ("heft", fun ?trace inst -> Ftsched_baseline.Heft.schedule ?trace inst);
    ("peft", fun ?trace inst -> Ftsched_baseline.Peft.schedule ?trace inst);
    ("cpop", fun ?trace inst -> Ftsched_baseline.Cpop.schedule ?trace inst)
  ]

(* Every scheduler, on several seeded instances, must produce a schedule
   the validator accepts — and the trace must agree with the schedule on
   the decisions taken. *)
let test_differential () =
  List.iter
    (fun seed ->
      let m = 6 and eps = 1 in
      let inst = random_instance ~n_tasks:30 ~m ~seed () in
      let v = Instance.n_tasks inst in
      List.iter
        (fun (name, run) ->
          let trace = Trace.create () in
          let s = run ?trace:(Some trace) inst in
          (match Validate.check s with
          | Ok () -> ()
          | Error errs ->
              Alcotest.failf "%s seed=%d: %d validation error(s), first: %a"
                name seed (List.length errs) Validate.pp_error (List.hd errs));
          let steps = Trace.steps trace in
          check_int (name ^ " traces every task") v (List.length steps);
          (* each step's chosen replicas must be the schedule's replicas *)
          List.iter
            (fun (st : Trace.step) ->
              let reps = Schedule.replicas s st.Trace.task in
              check_int
                (Printf.sprintf "%s task %d replica count" name st.Trace.task)
                (Array.length reps)
                (Array.length st.Trace.chosen);
              Array.iteri
                (fun i (c : Trace.replica) ->
                  check_bool
                    (Printf.sprintf "%s task %d replica %d matches" name
                       st.Trace.task i)
                    true
                    (c.Trace.proc = reps.(i).Schedule.proc
                    && c.Trace.start = reps.(i).Schedule.start
                    && c.Trace.finish = reps.(i).Schedule.finish))
                st.Trace.chosen)
            steps)
        (all_schedulers ~m ~eps))
    [ 1; 2; 3 ]

let test_trace_stats () =
  let inst = random_instance ~n_tasks:30 ~m:6 ~seed:5 () in
  let v = Instance.n_tasks inst and m = Instance.n_procs inst in
  let trace = Trace.create () in
  let _s = Ftsa.schedule ~seed:5 ~trace inst ~eps:2 in
  let stats = Trace.stats trace in
  check_int "steps" v stats.Metrics.steps;
  check_int "candidate evals = v*m" (v * m) stats.Metrics.candidate_evals;
  check_float "evals per task" (float_of_int m) stats.Metrics.evals_per_task;
  check_int "no gap searches without insertion" 0 stats.Metrics.gap_searches;
  let trace2 = Trace.create () in
  let _s2 = Ftsched_baseline.Heft.schedule ~trace:trace2 inst in
  let stats2 = Trace.stats trace2 in
  (* HEFT: v prepare+evaluate rounds of m gap searches, plus one
     re-search per committed replica *)
  check_int "heft gap searches" ((v * m) + v) stats2.Metrics.gap_searches;
  check_bool "heft positive mean gap depth" true
    (stats2.Metrics.mean_gap_depth >= 0.)

let test_trace_edges_and_jsonl () =
  let inst = random_instance ~n_tasks:25 ~m:5 ~seed:9 () in
  let trace = Trace.create () in
  let _s = Mc_ftsa.schedule ~seed:9 ~trace inst ~eps:1 in
  check_bool "mc-ftsa records selected edges" true
    (List.exists (fun (st : Trace.step) -> st.Trace.edges <> []) (Trace.steps trace));
  let path = Filename.temp_file "ftsched_trace" ".jsonl" in
  Trace.save_jsonl trace ~path;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  (* one object per step plus the trailing summary object *)
  check_int "jsonl line count" (Instance.n_tasks inst + 1) !lines

let () =
  Alcotest.run "kernel"
    [
      ( "proc-state",
        [
          quick prop_gap_no_overlap;
          quick prop_gap_after_ready;
          quick prop_slots_sorted_disjoint;
          quick prop_iter_slots_matches_slots;
          Alcotest.test_case "iter_slots empty" `Quick test_iter_slots_empty;
          Alcotest.test_case "ready times" `Quick test_ready_times;
        ] );
      ( "driver",
        [
          Alcotest.test_case "differential: all schedulers validate" `Quick
            test_differential;
          Alcotest.test_case "trace step statistics" `Quick test_trace_stats;
          Alcotest.test_case "trace edges and jsonl" `Quick
            test_trace_edges_and_jsonl;
        ] );
    ]
