(* Tests for Ftsched_sim.Adversary: the timed worst-case search must
   dominate the untimed Worst_case sweep, certify small subset spaces,
   produce replayable witnesses, and find link attacks when allowed. *)

module Scenario = Ftsched_sim.Scenario
module Event_sim = Ftsched_sim.Event_sim
module Worst_case = Ftsched_sim.Worst_case
module Adversary = Ftsched_sim.Adversary
module Crash_exec = Ftsched_sim.Crash_exec
module Ftsa = Ftsched_core.Ftsa
module Mc_ftsa = Ftsched_core.Mc_ftsa
module Schedule = Ftsched_schedule.Schedule
open Helpers

let quick = QCheck_alcotest.to_alcotest

(* [a] at least as bad as [b] (with tolerance for equal latencies). *)
let at_least_as_bad a b =
  match (a, b) with
  | Adversary.Defeated, _ -> true
  | Adversary.Latency _, Adversary.Defeated -> false
  | Adversary.Latency la, Adversary.Latency lb -> la >= lb -. 1e-6

let untimed_worst_outcome s ~count =
  let r = Worst_case.analyze ~policy:Crash_exec.Strict s ~count in
  match r.Worst_case.stats with
  | None -> Adversary.Defeated
  | Some st ->
      if r.Worst_case.defeated > 0 then Adversary.Defeated
      else Adversary.Latency st.Worst_case.worst

(* ------------------------------------------------------------------ *)

let test_search_dominates_untimed () =
  let inst = random_instance ~seed:31 ~n_tasks:20 ~m:4 () in
  List.iter
    (fun s ->
      List.iter
        (fun count ->
          let rep = Adversary.search ~seed:11 s ~count in
          check_bool "certified (C(4,count) tiny)" true
            (rep.Adversary.verdict = Adversary.Certified);
          let untimed = untimed_worst_outcome s ~count in
          check_bool "timed worst >= untimed worst" true
            (at_least_as_bad rep.Adversary.worst untimed);
          check_bool "reported untimed sweep >= Worst_case too" true
            (at_least_as_bad rep.Adversary.untimed_worst untimed);
          check_bool "spent some evaluations" true
            (rep.Adversary.evaluations > 0))
        [ 0; 1; 2 ])
    [ Ftsa.schedule inst ~eps:2; Mc_ftsa.schedule inst ~eps:2 ]

let test_witness_replays_exactly () =
  let inst = random_instance ~seed:77 ~n_tasks:25 ~m:5 () in
  List.iter
    (fun s ->
      let rep = Adversary.search ~seed:3 ~restarts:4 s ~count:2 in
      let r = Adversary.replay s rep.Adversary.witness in
      let replayed =
        match r.Event_sim.latency with
        | None -> Adversary.Defeated
        | Some l -> Adversary.Latency l
      in
      check_bool "replay reproduces the reported worst" true
        (replayed = rep.Adversary.worst))
    [ Ftsa.schedule inst ~eps:1; Mc_ftsa.schedule inst ~eps:1 ]

let test_zero_count_is_fault_free () =
  let s = Ftsa.schedule (tiny_instance ()) ~eps:1 in
  let rep = Adversary.search s ~count:0 in
  check_bool "nobody dies" true (rep.Adversary.witness.Adversary.deaths = []);
  (match rep.Adversary.worst with
  | Adversary.Latency l ->
      check_float "fault-free latency" (Schedule.latency_lower_bound s) l
  | Adversary.Defeated -> Alcotest.fail "fault-free run cannot be defeated");
  check_bool "certified" true (rep.Adversary.verdict = Adversary.Certified)

(* A 2-task chain forced across the machine: the single inter-processor
   link carries the only message, so one link drop (with no retries in
   the ambient faults) defeats the schedule even with zero deaths. *)
let test_link_attack_defeats_chain () =
  let b = Dag.Builder.create () in
  let t0 = Dag.Builder.add_task b in
  let t1 = Dag.Builder.add_task b in
  Dag.Builder.add_edge b ~src:t0 ~dst:t1 ~volume:10.;
  let dag = Dag.Builder.build b in
  let platform = Platform.homogeneous ~m:2 ~unit_delay:1. in
  let inst =
    Instance.create ~dag ~platform ~exec:[| [| 1.; 50. |]; [| 50.; 1. |] |]
  in
  let s = Ftsa.schedule inst ~eps:0 in
  let faults = Scenario.lossy ~retries:0 () in
  let rep = Adversary.search ~faults ~links:1 s ~count:0 in
  check_bool "link drop defeats the chain" true
    (rep.Adversary.worst = Adversary.Defeated);
  check_int "one dropped link in the witness" 1
    (List.length rep.Adversary.witness.Adversary.dropped_links);
  (* the witness must replay to the same defeat *)
  let r = Adversary.replay ~faults s rep.Adversary.witness in
  check_bool "replayed defeat" true (r.Event_sim.latency = None);
  (* without the link budget the chain survives *)
  let rep0 = Adversary.search ~faults ~links:0 s ~count:0 in
  check_bool "no links, no defeat" true
    (rep0.Adversary.worst <> Adversary.Defeated)

let test_timed_attack_no_better_needed () =
  (* under strict semantics with all-to-all messaging, dying at t = 0 is
     already the worst time to die, so the certified answer equals the
     untimed worst on FTSA schedules *)
  let inst = random_instance ~seed:5 ~n_tasks:20 ~m:4 () in
  let s = Ftsa.schedule inst ~eps:1 in
  let rep = Adversary.search ~seed:2 s ~count:1 in
  check_bool "t=0 sweep found it" true
    (at_least_as_bad rep.Adversary.untimed_worst rep.Adversary.worst
    || rep.Adversary.worst = Adversary.Defeated)

let test_search_guards () =
  let s = Ftsa.schedule (tiny_instance ()) ~eps:1 in
  Alcotest.check_raises "count too large"
    (Invalid_argument "Adversary.search: count") (fun () ->
      ignore (Adversary.search s ~count:3));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Adversary.search: count") (fun () ->
      ignore (Adversary.search s ~count:(-1)));
  Alcotest.check_raises "negative links"
    (Invalid_argument "Adversary.search: links") (fun () ->
      ignore (Adversary.search s ~links:(-1) ~count:1))

let test_replay_guards () =
  let s = Ftsa.schedule (tiny_instance ()) ~eps:1 in
  Alcotest.check_raises "unknown processor"
    (Invalid_argument "Adversary.replay: processor") (fun () ->
      ignore
        (Adversary.replay s
           {
             Adversary.deaths = [ { Scenario.proc = 7; at = 0. } ];
             dropped_links = [];
           }));
  Alcotest.check_raises "unknown link"
    (Invalid_argument "Adversary.replay: link") (fun () ->
      ignore
        (Adversary.replay s
           { Adversary.deaths = []; dropped_links = [ (0, 9) ] }))

let test_search_deterministic () =
  let inst = random_instance ~seed:13 ~n_tasks:20 ~m:4 () in
  let s = Mc_ftsa.schedule inst ~eps:1 in
  let r1 = Adversary.search ~seed:42 ~restarts:3 s ~count:1 in
  let r2 = Adversary.search ~seed:42 ~restarts:3 s ~count:1 in
  check_bool "same worst" true (r1.Adversary.worst = r2.Adversary.worst);
  check_bool "same witness" true (r1.Adversary.witness = r2.Adversary.witness)

let prop_search_dominates_untimed =
  QCheck.Test.make ~name:"timed search >= untimed Worst_case on MC-FTSA"
    ~count:10
    QCheck.(int_range 0 5000)
    (fun seed ->
      let inst = random_instance ~seed ~n_tasks:15 ~m:4 () in
      let s = Mc_ftsa.schedule ~seed inst ~eps:1 in
      let rep = Adversary.search ~seed s ~count:1 in
      at_least_as_bad rep.Adversary.worst (untimed_worst_outcome s ~count:1))

let () =
  Alcotest.run "adversary"
    [
      ( "search",
        [
          Alcotest.test_case "dominates untimed sweep" `Quick
            test_search_dominates_untimed;
          Alcotest.test_case "witness replays exactly" `Quick
            test_witness_replays_exactly;
          Alcotest.test_case "count 0 = fault-free" `Quick
            test_zero_count_is_fault_free;
          Alcotest.test_case "link attack defeats chain" `Quick
            test_link_attack_defeats_chain;
          Alcotest.test_case "t=0 certified on FTSA" `Quick
            test_timed_attack_no_better_needed;
          Alcotest.test_case "deterministic" `Quick test_search_deterministic;
          Alcotest.test_case "search guards" `Quick test_search_guards;
          Alcotest.test_case "replay guards" `Quick test_replay_guards;
          quick prop_search_dominates_untimed;
        ] );
    ]
