(* Tests for Ftsched_ds: AVL trees, pairing heaps, Hopcroft–Karp. *)

module Avl = Ftsched_ds.Avl
module Heap = Ftsched_ds.Pairing_heap
module Hk = Ftsched_ds.Hopcroft_karp
open Helpers

module Int_avl = Avl.Make (Int)
module Int_heap = Heap.Make (Int)
module Int_map = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* AVL                                                                 *)

type op = Add of int * int | Remove of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun k v -> Add (k, v)) (int_bound 50) (int_bound 1000));
        (1, map (fun k -> Remove k) (int_bound 50));
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add (k, v) -> Printf.sprintf "+%d=%d" k v
             | Remove k -> Printf.sprintf "-%d" k)
           ops))
    QCheck.Gen.(list_size (int_range 0 200) op_gen)

let apply_ops ops =
  List.fold_left
    (fun (t, m) op ->
      match op with
      | Add (k, v) -> (Int_avl.add k v t, Int_map.add k v m)
      | Remove k -> (Int_avl.remove k t, Int_map.remove k m))
    (Int_avl.empty, Int_map.empty)
    ops

let prop_avl_vs_map =
  QCheck.Test.make ~name:"Avl agrees with Map model" ~count:300 ops_arb
    (fun ops ->
      let t, m = apply_ops ops in
      Int_avl.to_list t = Int_map.bindings m
      && Int_avl.cardinal t = Int_map.cardinal m
      && List.for_all
           (fun k -> Int_avl.find_opt k t = Int_map.find_opt k m)
           (List.init 51 (fun i -> i)))

let prop_avl_invariants =
  QCheck.Test.make ~name:"Avl invariants after random ops" ~count:300 ops_arb
    (fun ops ->
      let t, _ = apply_ops ops in
      Int_avl.check_invariants t)

let prop_avl_balance =
  QCheck.Test.make ~name:"Avl height is O(log n)" ~count:50
    QCheck.(int_range 1 2000)
    (fun n ->
      (* worst adversary for naive BSTs: sorted insertion *)
      let t = ref Int_avl.empty in
      for i = 1 to n do
        t := Int_avl.add i i !t
      done;
      let h = Int_avl.height !t in
      float_of_int h <= 1.4405 *. (log (float_of_int n +. 2.) /. log 2.))

let prop_avl_pop_max_sorted =
  QCheck.Test.make ~name:"Avl pop_max drains in decreasing order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun l ->
      let t = Int_avl.of_list (List.map (fun k -> (k, k)) l) in
      let rec drain acc t =
        match Int_avl.pop_max t with
        | None -> List.rev acc
        | Some (k, _, t') -> drain (k :: acc) t'
      in
      drain [] t = List.rev (List.sort_uniq compare l))

let test_avl_pop_min () =
  let t = Int_avl.of_list [ (3, "c"); (1, "a"); (2, "b") ] in
  match Int_avl.pop_min t with
  | Some (1, "a", t') ->
      check_int "cardinal" 2 (Int_avl.cardinal t');
      check_bool "1 gone" false (Int_avl.mem 1 t')
  | _ -> Alcotest.fail "wrong minimum"

let test_avl_empty () =
  check_bool "is_empty" true (Int_avl.is_empty Int_avl.empty);
  check_bool "pop_max none" true (Int_avl.pop_max Int_avl.empty = None);
  check_bool "pop_min none" true (Int_avl.pop_min Int_avl.empty = None);
  check_bool "min none" true (Int_avl.min_binding_opt Int_avl.empty = None);
  check_int "cardinal" 0 (Int_avl.cardinal Int_avl.empty)

let test_avl_replace () =
  let t = Int_avl.add 1 "old" Int_avl.empty in
  let t = Int_avl.add 1 "new" t in
  check_int "no duplicate" 1 (Int_avl.cardinal t);
  Alcotest.(check (option string)) "replaced" (Some "new") (Int_avl.find_opt 1 t)

let test_avl_remove_absent () =
  let t = Int_avl.add 1 1 Int_avl.empty in
  let t' = Int_avl.remove 99 t in
  check_int "unchanged" 1 (Int_avl.cardinal t')

let test_avl_fold_order () =
  let t = Int_avl.of_list [ (2, ()); (1, ()); (3, ()) ] in
  let keys = List.rev (Int_avl.fold (fun k () acc -> k :: acc) t []) in
  Alcotest.(check (list int)) "increasing" [ 1; 2; 3 ] keys

let test_avl_persistence () =
  let t1 = Int_avl.of_list [ (1, 1); (2, 2) ] in
  let t2 = Int_avl.remove 1 t1 in
  check_bool "t1 untouched" true (Int_avl.mem 1 t1);
  check_bool "t2 updated" false (Int_avl.mem 1 t2)

(* ------------------------------------------------------------------ *)
(* Pairing heap                                                        *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"Pairing_heap drains sorted" ~count:300
    QCheck.(list int)
    (fun l ->
      Int_heap.to_sorted_list (Int_heap.of_list l) = List.sort compare l)

let prop_heap_merge =
  QCheck.Test.make ~name:"Pairing_heap merge is union" ~count:200
    QCheck.(pair (list int) (list int))
    (fun (a, b) ->
      let h = Int_heap.merge (Int_heap.of_list a) (Int_heap.of_list b) in
      Int_heap.to_sorted_list h = List.sort compare (a @ b))

let prop_heap_cardinal =
  QCheck.Test.make ~name:"Pairing_heap cardinal" ~count:200
    QCheck.(list int)
    (fun l -> Int_heap.cardinal (Int_heap.of_list l) = List.length l)

let test_heap_empty () =
  check_bool "is_empty" true (Int_heap.is_empty Int_heap.empty);
  check_bool "find none" true (Int_heap.find_min Int_heap.empty = None);
  check_bool "pop none" true (Int_heap.pop_min Int_heap.empty = None)

let test_heap_find_min () =
  let h = Int_heap.of_list [ 5; 2; 9 ] in
  Alcotest.(check (option int)) "min" (Some 2) (Int_heap.find_min h);
  check_int "find_min does not consume" 3 (Int_heap.cardinal h)

let test_heap_duplicates () =
  let h = Int_heap.of_list [ 1; 1; 1 ] in
  Alcotest.(check (list int)) "keeps duplicates" [ 1; 1; 1 ]
    (Int_heap.to_sorted_list h)

(* ------------------------------------------------------------------ *)
(* Event min-heap                                                      *)

module Eh = Ftsched_ds.Event_heap

(* Model: pushing (at, seq) keys with seq = push index pops them in
   increasing lexicographic (at, seq) order, payload attached.  A small
   timestamp alphabet forces plenty of equal-[at] collisions, which is
   exactly where the seq ordering carries the determinism argument. *)
let events_arb =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun at -> Printf.sprintf "%.1f" at) l))
    QCheck.Gen.(
      list_size (int_range 0 200)
        (map (fun i -> float_of_int i /. 2.) (int_bound 10)))

let drain_events h =
  let acc = ref [] in
  while not (Eh.is_empty h) do
    acc := (Eh.min_at h, Eh.min_seq h, Eh.min_payload h) :: !acc;
    Eh.drop_min h
  done;
  List.rev !acc

let prop_event_heap_drains_sorted =
  QCheck.Test.make ~name:"Event_heap pops increasing (at, seq) with payload"
    ~count:300 events_arb
    (fun ats ->
      let h = Eh.create ~capacity:1 () in
      let keys = List.mapi (fun seq at -> (at, seq, (seq * 3) + 1)) ats in
      List.iter (fun (at, seq, payload) -> Eh.push h ~at ~seq ~payload) keys;
      let expect =
        List.sort
          (fun (at1, s1, _) (at2, s2, _) ->
            match Float.compare at1 at2 with 0 -> compare s1 s2 | c -> c)
          keys
      in
      drain_events h = expect)

let prop_event_heap_interleaved =
  QCheck.Test.make
    ~name:"Event_heap interleaved push/pop matches sorted-list model"
    ~count:300
    QCheck.(list (int_bound 8))
    (fun ops ->
      let h = Eh.create ~capacity:1 () in
      let model = ref [] (* sorted increasing (at, seq) *) in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun at ->
          if at = 0 && !model <> [] then begin
            (match !model with
            | (mat, mseq) :: rest ->
                if Eh.min_at h <> mat || Eh.min_seq h <> mseq then ok := false;
                Eh.drop_min h;
                model := rest
            | [] -> assert false)
          end
          else begin
            incr seq;
            let at = float_of_int at in
            Eh.push h ~at ~seq:!seq ~payload:0;
            model :=
              List.sort
                (fun (a1, s1) (a2, s2) ->
                  match Float.compare a1 a2 with 0 -> compare s1 s2 | c -> c)
                ((at, !seq) :: !model)
          end)
        ops;
      !ok)

let test_event_heap_empty_raises () =
  let h = Eh.create () in
  check_bool "is_empty" true (Eh.is_empty h);
  check_int "length" 0 (Eh.length h);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "min_at raises" true (raises (fun () -> Eh.min_at h));
  check_bool "min_seq raises" true (raises (fun () -> Eh.min_seq h));
  check_bool "min_payload raises" true (raises (fun () -> Eh.min_payload h));
  check_bool "drop_min raises" true (raises (fun () -> Eh.drop_min h))

let test_event_heap_clear_reuses () =
  let h = Eh.create ~capacity:2 () in
  for seq = 0 to 99 do
    Eh.push h ~at:(float_of_int (seq mod 7)) ~seq ~payload:seq
  done;
  check_int "grown" 100 (Eh.length h);
  Eh.clear h;
  check_bool "cleared" true (Eh.is_empty h);
  Eh.push h ~at:3. ~seq:42 ~payload:7;
  check_int "usable after clear" 42 (Eh.min_seq h);
  check_int "payload" 7 (Eh.min_payload h)

(* ------------------------------------------------------------------ *)
(* Binary max-heap                                                     *)

module Bh = Ftsched_ds.Bin_heap

(* Model: a heap holding distinct (prio, tie, task) keys pops them in
   decreasing lexicographic order.  Distinct tasks guarantee distinct
   keys even when prio/tie collide — exactly the driver's situation. *)
let keys_arb =
  QCheck.make
    ~print:(fun keys ->
      String.concat ";"
        (List.map
           (fun (p, t, task) -> Printf.sprintf "(%g,%g,#%d)" p t task)
           keys))
    QCheck.Gen.(
      list_size (int_range 0 150)
        (pair (int_bound 5) (int_bound 5))
      >|= List.mapi (fun task (p, t) ->
              (float_of_int p, float_of_int t, task)))

let drain h =
  let acc = ref [] in
  while not (Bh.is_empty h) do
    acc := (Bh.max_prio h, Bh.max_task h) :: !acc;
    Bh.drop_max h
  done;
  List.rev !acc

let prop_bin_heap_drains_sorted =
  QCheck.Test.make ~name:"Bin_heap pops decreasing (prio, tie, task)"
    ~count:300 keys_arb
    (fun keys ->
      let h = Bh.create ~capacity:1 () in
      List.iter (fun (p, t, task) -> Bh.push h ~prio:p ~tie:t ~task) keys;
      let expect =
        List.sort (fun a b -> compare b a) keys
        |> List.map (fun (p, _, task) -> (p, task))
      in
      drain h = expect)

let prop_bin_heap_interleaved =
  QCheck.Test.make
    ~name:"Bin_heap interleaved push/pop matches sorted-list model"
    ~count:300
    QCheck.(list (pair (int_bound 8) (int_bound 8)))
    (fun ops ->
      (* model: the same keys in a list kept sorted decreasing; pop every
         third op so pushes and pops interleave like the driver loop *)
      let h = Bh.create () in
      let model = ref [] in
      let ok = ref true in
      List.iteri
        (fun i (p, t) ->
          let key = (float_of_int p, float_of_int t, i) in
          let p, t, task = key in
          Bh.push h ~prio:p ~tie:t ~task;
          model := List.sort (fun a b -> compare b a) (key :: !model);
          if i mod 3 = 2 then begin
            (match !model with
            | (mp, _, mtask) :: rest ->
                if Bh.max_task h <> mtask || Bh.max_prio h <> mp then
                  ok := false;
                Bh.drop_max h;
                model := rest
            | [] -> ok := false);
            if Bh.length h <> List.length !model then ok := false
          end)
        ops;
      !ok)

let test_bin_heap_empty_raises () =
  let h = Bh.create () in
  check_bool "is_empty" true (Bh.is_empty h);
  check_int "length" 0 (Bh.length h);
  let raises f =
    try
      f ();
      false
    with Invalid_argument _ -> true
  in
  check_bool "max_task raises" true (raises (fun () -> ignore (Bh.max_task h)));
  check_bool "max_prio raises" true (raises (fun () -> ignore (Bh.max_prio h)));
  check_bool "drop_max raises" true (raises (fun () -> Bh.drop_max h))

let test_bin_heap_clear_reuses () =
  let h = Bh.create ~capacity:2 () in
  for task = 0 to 99 do
    Bh.push h ~prio:(float_of_int (task mod 7)) ~tie:0. ~task
  done;
  check_int "length before clear" 100 (Bh.length h);
  Bh.clear h;
  check_bool "empty after clear" true (Bh.is_empty h);
  Bh.push h ~prio:3. ~tie:1. ~task:42;
  check_int "usable after clear" 42 (Bh.max_task h);
  check_bool "max_prio" true (Bh.max_prio h = 3.)

let test_bin_heap_tie_breaks () =
  (* equal prio: larger tie wins; equal (prio, tie): larger task wins *)
  let h = Bh.create () in
  Bh.push h ~prio:1. ~tie:0.5 ~task:3;
  Bh.push h ~prio:1. ~tie:0.9 ~task:1;
  Bh.push h ~prio:1. ~tie:0.9 ~task:2;
  check_int "tie then task" 2 (Bh.max_task h);
  Bh.drop_max h;
  check_int "next" 1 (Bh.max_task h);
  Bh.drop_max h;
  check_int "last" 3 (Bh.max_task h)

(* ------------------------------------------------------------------ *)
(* Hopcroft–Karp                                                       *)

(* Reference: maximum bipartite matching by Kuhn's augmenting paths. *)
let reference_matching ~n_left ~n_right ~adj =
  let match_r = Array.make n_right (-1) in
  let rec try_kuhn u seen =
    List.exists
      (fun v ->
        if seen.(v) then false
        else begin
          seen.(v) <- true;
          if match_r.(v) = -1 || try_kuhn match_r.(v) seen then begin
            match_r.(v) <- u;
            true
          end
          else false
        end)
      adj.(u)
  in
  let size = ref 0 in
  for u = 0 to n_left - 1 do
    if try_kuhn u (Array.make n_right false) then incr size
  done;
  !size

let bipartite_arb =
  QCheck.make
    ~print:(fun (nl, nr, edges) ->
      Printf.sprintf "nl=%d nr=%d edges=%s" nl nr
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) edges)))
    QCheck.Gen.(
      int_range 1 8 >>= fun nl ->
      int_range 1 8 >>= fun nr ->
      list_size (int_range 0 30)
        (pair (int_bound (nl - 1)) (int_bound (nr - 1)))
      >>= fun edges -> return (nl, nr, edges))

let adj_of ~n_left edges =
  let adj = Array.make n_left [] in
  List.iter
    (fun (u, v) -> if not (List.mem v adj.(u)) then adj.(u) <- v :: adj.(u))
    edges;
  adj

let prop_hk_max_size =
  QCheck.Test.make ~name:"Hopcroft–Karp size equals reference" ~count:500
    bipartite_arb
    (fun (n_left, n_right, edges) ->
      let adj = adj_of ~n_left edges in
      let r = Hk.max_matching ~n_left ~n_right ~adj in
      r.Hk.size = reference_matching ~n_left ~n_right ~adj)

let prop_hk_valid_matching =
  QCheck.Test.make ~name:"Hopcroft–Karp produces a valid matching" ~count:500
    bipartite_arb
    (fun (n_left, n_right, edges) ->
      let adj = adj_of ~n_left edges in
      let r = Hk.max_matching ~n_left ~n_right ~adj in
      let ok = ref true in
      Array.iteri
        (fun u v ->
          if v <> -1 then begin
            if not (List.mem v adj.(u)) then ok := false;
            if r.Hk.match_right.(v) <> u then ok := false
          end)
        r.Hk.match_left;
      let matched =
        Array.to_list r.Hk.match_left |> List.filter (fun v -> v >= 0)
      in
      List.length (List.sort_uniq compare matched) = List.length matched && !ok)

let test_hk_perfect () =
  let adj = Array.make 3 [ 0; 1; 2 ] in
  let r = Hk.max_matching ~n_left:3 ~n_right:3 ~adj in
  check_int "size" 3 r.Hk.size;
  check_bool "perfect" true (Hk.is_perfect_on_left r)

let test_hk_bottleneck_structure () =
  (* left 0 and 1 both only connect to right 0: max matching is 1 *)
  let adj = [| [ 0 ]; [ 0 ] |] in
  let r = Hk.max_matching ~n_left:2 ~n_right:2 ~adj in
  check_int "size" 1 r.Hk.size;
  check_bool "not perfect" false (Hk.is_perfect_on_left r)

let test_hk_empty_graph () =
  let adj = [| []; [] |] in
  let r = Hk.max_matching ~n_left:2 ~n_right:3 ~adj in
  check_int "size" 0 r.Hk.size

let test_hk_bad_input () =
  Alcotest.check_raises "neighbour out of range"
    (Invalid_argument "Hopcroft_karp.max_matching: neighbour out of range")
    (fun () -> ignore (Hk.max_matching ~n_left:1 ~n_right:1 ~adj:[| [ 5 ] |]))

let () =
  Alcotest.run "ds"
    [
      ( "avl",
        [
          quick prop_avl_vs_map;
          quick prop_avl_invariants;
          quick prop_avl_balance;
          quick prop_avl_pop_max_sorted;
          Alcotest.test_case "pop_min" `Quick test_avl_pop_min;
          Alcotest.test_case "empty" `Quick test_avl_empty;
          Alcotest.test_case "replace" `Quick test_avl_replace;
          Alcotest.test_case "remove absent" `Quick test_avl_remove_absent;
          Alcotest.test_case "fold order" `Quick test_avl_fold_order;
          Alcotest.test_case "persistence" `Quick test_avl_persistence;
        ] );
      ( "pairing-heap",
        [
          quick prop_heap_sorts;
          quick prop_heap_merge;
          quick prop_heap_cardinal;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "find_min" `Quick test_heap_find_min;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
        ] );
      ( "event-heap",
        [
          quick prop_event_heap_drains_sorted;
          quick prop_event_heap_interleaved;
          Alcotest.test_case "empty raises" `Quick test_event_heap_empty_raises;
          Alcotest.test_case "clear and grow" `Quick
            test_event_heap_clear_reuses;
        ] );
      ( "bin-heap",
        [
          quick prop_bin_heap_drains_sorted;
          quick prop_bin_heap_interleaved;
          Alcotest.test_case "empty raises" `Quick test_bin_heap_empty_raises;
          Alcotest.test_case "clear and grow" `Quick test_bin_heap_clear_reuses;
          Alcotest.test_case "tie-breaking" `Quick test_bin_heap_tie_breaks;
        ] );
      ( "hopcroft-karp",
        [
          quick prop_hk_max_size;
          quick prop_hk_valid_matching;
          Alcotest.test_case "perfect K33" `Quick test_hk_perfect;
          Alcotest.test_case "bottleneck" `Quick test_hk_bottleneck_structure;
          Alcotest.test_case "empty graph" `Quick test_hk_empty_graph;
          Alcotest.test_case "bad input" `Quick test_hk_bad_input;
        ] );
    ]
